"""Tests for node placement and disk-model connectivity."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import (
    Position,
    Topology,
    generate_connected_random_topology,
    generate_connected_topology,
)
from repro.sim.rng import RandomStreams


class TestPosition:
    def test_distance(self) -> None:
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self) -> None:
        a, b = Position(1.5, 2.5), Position(-3, 7)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestTopologyConstruction:
    def test_random_placement_inside_area(self) -> None:
        topo = Topology.random(num_nodes=50, area=(500.0, 500.0), comm_range=125.0, seed=1)
        assert topo.num_nodes == 50
        for position in topo.positions.values():
            assert 0.0 <= position.x <= 500.0
            assert 0.0 <= position.y <= 500.0

    def test_random_placement_is_seed_deterministic(self) -> None:
        topo_a = Topology.random(10, seed=3)
        topo_b = Topology.random(10, seed=3)
        assert topo_a.positions == topo_b.positions

    def test_grid_shape_and_neighbors(self) -> None:
        topo = Topology.grid(rows=3, cols=3, spacing=10.0)
        assert topo.num_nodes == 9
        # Center node (id 4) has 4 axis-aligned neighbours at default range.
        assert topo.neighbors(4) == frozenset({1, 3, 5, 7})

    def test_line_topology_chain_connectivity(self) -> None:
        topo = Topology.line(num_nodes=4, spacing=100.0, comm_range=120.0)
        assert topo.neighbors(0) == frozenset({1})
        assert topo.neighbors(1) == frozenset({0, 2})
        assert topo.neighbors(3) == frozenset({2})

    def test_from_positions(self) -> None:
        topo = Topology.from_positions([(0, 0), (50, 0), (200, 0)], comm_range=100.0)
        assert topo.in_range(0, 1)
        assert not topo.in_range(0, 2)

    def test_rejects_nonpositive_range(self) -> None:
        with pytest.raises(ValueError):
            Topology.from_positions([(0, 0)], comm_range=0.0)

    def test_rejects_empty_random(self) -> None:
        with pytest.raises(ValueError):
            Topology.random(0)

    def test_rejects_bad_grid(self) -> None:
        with pytest.raises(ValueError):
            Topology.grid(0, 3, 10.0)
        with pytest.raises(ValueError):
            Topology.grid(3, 3, 0.0)


class TestConnectivityQueries:
    def test_in_range_is_symmetric_and_irreflexive(self) -> None:
        topo = Topology.random(20, seed=5)
        for a in topo.node_ids:
            assert not topo.in_range(a, a)
            for b in topo.node_ids:
                assert topo.in_range(a, b) == topo.in_range(b, a)

    def test_neighbors_match_in_range(self) -> None:
        topo = Topology.random(25, seed=2)
        for a in topo.node_ids:
            expected = {b for b in topo.node_ids if topo.in_range(a, b)}
            assert topo.neighbors(a) == expected

    def test_center_node_is_closest_to_center(self) -> None:
        topo = Topology.from_positions(
            [(0, 0), (250, 250), (499, 499)], comm_range=400.0, area=(500.0, 500.0)
        )
        assert topo.center_node() == 1

    def test_nodes_within_radius(self) -> None:
        topo = Topology.from_positions([(0, 0), (100, 0), (400, 0)], comm_range=150.0)
        assert topo.nodes_within(0, 300.0) == [1]

    def test_graph_export(self) -> None:
        topo = Topology.line(num_nodes=5, spacing=10.0, comm_range=15.0)
        graph = topo.to_graph()
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4

    def test_is_connected(self) -> None:
        connected = Topology.line(num_nodes=3, spacing=10.0, comm_range=15.0)
        assert connected.is_connected()
        disconnected = Topology.from_positions([(0, 0), (1000, 0)], comm_range=10.0)
        assert not disconnected.is_connected()

    def test_connected_component_of(self) -> None:
        topo = Topology.from_positions([(0, 0), (5, 0), (1000, 0)], comm_range=10.0)
        assert topo.connected_component_of(0) == frozenset({0, 1})

    def test_remove_node_updates_neighbors(self) -> None:
        topo = Topology.line(num_nodes=3, spacing=10.0, comm_range=15.0)
        topo.remove_node(1)
        assert topo.neighbors(0) == frozenset()
        with pytest.raises(KeyError):
            topo.remove_node(1)


class TestRemoveNode:
    """Topology mutation under permanent failures (the churn substrate)."""

    def test_neighbor_sets_are_fully_rebuilt(self) -> None:
        topo = Topology.grid(rows=2, cols=3, spacing=10.0)
        # Node layout:  3 4 5
        #               0 1 2   (axis-aligned neighbours only)
        topo.remove_node(4)
        assert 4 not in topo.positions
        assert topo.node_ids == [0, 1, 2, 3, 5]
        for node in topo.node_ids:
            assert 4 not in topo.neighbors(node)
        # Untouched adjacencies survive the rebuild.
        assert topo.neighbors(0) == frozenset({1, 3})
        assert topo.neighbors(1) == frozenset({0, 2})

    def test_removal_can_disconnect_and_is_detected(self) -> None:
        topo = Topology.line(num_nodes=5, spacing=10.0, comm_range=15.0)
        assert topo.is_connected()
        topo.remove_node(2)  # the middle node is a cut vertex
        assert not topo.is_connected()
        assert topo.connected_component_of(0) == frozenset({0, 1})
        assert topo.connected_component_of(4) == frozenset({3, 4})

    def test_removing_a_leaf_preserves_connectivity(self) -> None:
        topo = Topology.line(num_nodes=4, spacing=10.0, comm_range=15.0)
        topo.remove_node(3)
        assert topo.is_connected()
        assert topo.num_nodes == 3

    def test_failure_injection_never_partitions_survivors(self) -> None:
        """The failure-injection path uses remove_node on a scratch copy to
        skip fraction-drawn victims that would partition the survivors."""
        from repro.experiments.runner import install_failure_schedule
        from repro.net.node import build_network
        from repro.net.topology import FailureSchedule
        from repro.radio.energy import IDEAL
        from repro.routing.tree import build_routing_tree
        from repro.sim.engine import Simulator
        from repro.sim.trace import TraceRecorder

        # In a 7-node line rooted at node 3, every interior node is a cut
        # vertex: a 40% fraction can only ever fail end nodes (in order).
        topo = Topology.line(num_nodes=7, spacing=10.0, comm_range=15.0)
        sim = Simulator(seed=3, trace=TraceRecorder(enabled=False))
        network = build_network(sim, topo, power_profile=IDEAL)
        tree = build_routing_tree(topo, root=3)
        schedule = FailureSchedule(fraction=0.4, window=(1.0, 2.0))
        events = install_failure_schedule(sim, network, tree, schedule)
        sim.run(until=5.0)
        failed = {node for _, node in events}
        assert failed
        for node in failed:
            assert network.node(node).failed
        survivors = [n for n in tree.nodes if n not in failed]
        scratch = Topology(
            positions={n: topo.positions[n] for n in survivors},
            comm_range=topo.comm_range,
            area=topo.area,
        )
        assert scratch.is_connected()
        assert tree.root in scratch.positions


class TestNewGenerators:
    def test_clustered_nodes_stay_inside_area(self) -> None:
        topo = Topology.clustered(
            40, num_clusters=4, cluster_radius=40.0, area=(400.0, 300.0), seed=9
        )
        assert topo.num_nodes == 40
        for position in topo.positions.values():
            assert 0.0 <= position.x <= 400.0
            assert 0.0 <= position.y <= 300.0

    def test_clustered_is_seed_deterministic(self) -> None:
        a = Topology.clustered(20, num_clusters=3, seed=5)
        b = Topology.clustered(20, num_clusters=3, seed=5)
        assert a.positions == b.positions

    def test_clustered_concentrates_nodes(self) -> None:
        # With tight clusters, the average nearest-neighbour distance is far
        # below that of a uniform placement over the same area.
        def mean_nearest(topology: Topology) -> float:
            total = 0.0
            for a in topology.node_ids:
                total += min(
                    topology.distance(a, b) for b in topology.node_ids if b != a
                )
            return total / topology.num_nodes

        clustered = Topology.clustered(
            30, num_clusters=3, cluster_radius=20.0, area=(500.0, 500.0), seed=2
        )
        uniform = Topology.random(30, area=(500.0, 500.0), seed=2)
        assert mean_nearest(clustered) < mean_nearest(uniform)

    def test_clustered_validation(self) -> None:
        with pytest.raises(ValueError):
            Topology.clustered(0)
        with pytest.raises(ValueError):
            Topology.clustered(5, num_clusters=6)
        with pytest.raises(ValueError):
            Topology.clustered(5, cluster_radius=0.0)

    def test_corridor_forms_a_chain(self) -> None:
        topo = Topology.corridor(12, area=(900.0, 60.0), comm_range=125.0, seed=1)
        assert topo.num_nodes == 12
        assert topo.is_connected()
        xs = [topo.positions[n].x for n in topo.node_ids]
        assert xs == sorted(xs)  # node ids advance along the corridor
        for position in topo.positions.values():
            assert 0.0 <= position.y <= 60.0

    def test_corridor_is_multi_hop(self) -> None:
        topo = Topology.corridor(12, area=(900.0, 60.0), comm_range=125.0, seed=1)
        # The two ends of the corridor must not hear each other directly.
        assert not topo.in_range(0, 11)

    def test_corridor_validation(self) -> None:
        with pytest.raises(ValueError):
            Topology.corridor(0)
        with pytest.raises(ValueError):
            Topology.corridor(5, area=(50.0, 100.0))


class TestConnectedGeneration:
    def test_generated_topology_is_connected(self) -> None:
        topo = generate_connected_random_topology(
            num_nodes=30, area=(300.0, 300.0), comm_range=100.0, seed=4
        )
        assert topo.is_connected()

    def test_generation_with_root_requirement(self) -> None:
        topo = generate_connected_random_topology(
            num_nodes=20,
            area=(250.0, 250.0),
            comm_range=100.0,
            seed=11,
            require_connected_from=0,
        )
        assert len(topo.connected_component_of(0)) == 20

    def test_generation_fails_when_impossible(self) -> None:
        with pytest.raises(RuntimeError):
            generate_connected_random_topology(
                num_nodes=40, area=(5000.0, 5000.0), comm_range=10.0, seed=0, max_attempts=3
            )

    def test_generic_generator_accepts_any_factory(self) -> None:
        topo = generate_connected_topology(
            lambda streams: Topology.clustered(
                24, num_clusters=3, area=(400.0, 400.0), comm_range=125.0, streams=streams
            ),
            seed=7,
        )
        assert topo.is_connected()
        assert topo.num_nodes == 24

    def test_generic_generator_matches_random_helper(self) -> None:
        # The uniform helper is a thin wrapper; both paths draw identically.
        direct = generate_connected_random_topology(
            num_nodes=15, area=(300.0, 300.0), comm_range=100.0, seed=21
        )
        generic = generate_connected_topology(
            lambda streams: Topology.random(
                num_nodes=15, area=(300.0, 300.0), comm_range=100.0, streams=streams
            ),
            seed=21,
        )
        assert direct.positions == generic.positions


@settings(max_examples=30, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=30),
    comm_range=st.floats(min_value=20.0, max_value=700.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_neighbor_relation_is_symmetric(num_nodes: int, comm_range: float, seed: int) -> None:
    topo = Topology.random(num_nodes, comm_range=comm_range, seed=seed)
    for a in topo.node_ids:
        for b in topo.neighbors(a):
            assert a in topo.neighbors(b)
            assert topo.distance(a, b) <= comm_range + 1e-9
