"""Unit tests for the Safe Sleep scheduler."""

from __future__ import annotations

import pytest

from repro.core.safe_sleep import SafeSleep
from repro.core.timing import TimingTable
from repro.mac.base import MacConfig
from repro.net.node import build_network
from repro.net.topology import Topology
from repro.radio.energy import IDEAL, MICA2_TYPICAL
from repro.radio.states import RadioState
from repro.sim.engine import Simulator


def make_node_with_safe_sleep(profile=IDEAL, break_even_time=None, setup_until=0.0, seed=0):
    """A single-node network with a Safe Sleep instance wired to a fresh table."""
    sim = Simulator(seed=seed)
    topo = Topology.from_positions([(0.0, 0.0), (50.0, 0.0)], comm_range=100.0)
    network = build_network(sim, topo, power_profile=profile)
    node = network.node(0)
    table = TimingTable()
    ss = SafeSleep(
        sim,
        node.radio,
        node.mac,
        table,
        break_even_time=break_even_time,
        setup_until=setup_until,
    )
    return sim, network, node, table, ss


class TestSleepDecision:
    def test_sleeps_until_next_expectation(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep()
        table.set_next_receive(1, child=1, time=2.0)
        sim.run(until=1.0)
        assert node.radio.is_asleep
        sim.run(until=3.0)
        assert node.radio.is_awake
        node.radio.finalize()
        # Asleep from ~0 to 2.0 out of 3.0 observed seconds.
        assert node.radio.tracker.sleep_time() == pytest.approx(2.0, abs=0.01)
        assert ss.stats.sleeps == 1

    def test_wakes_exactly_at_expectation_with_transition_time(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep(profile=MICA2_TYPICAL)
        table.set_next_receive(1, child=1, time=1.0)
        sim.run(until=0.5)
        assert node.radio.is_asleep
        sim.run(until=1.0)
        # The radio must be awake (not still transitioning) at the expected time.
        assert node.radio.state is RadioState.IDLE

    def test_does_not_sleep_for_interval_below_break_even(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep(break_even_time=0.5)
        table.set_next_receive(1, child=1, time=0.3)
        sim.run(until=0.2)
        assert node.radio.is_awake
        assert ss.stats.kept_awake_below_break_even >= 1
        assert ss.stats.sleeps == 0

    def test_sleeps_when_interval_exceeds_break_even(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep(break_even_time=0.5)
        table.set_next_receive(1, child=1, time=1.0)
        sim.run(until=0.2)
        assert node.radio.is_asleep

    def test_stays_awake_with_no_expectations(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep()
        sim.run(until=1.0)
        assert node.radio.is_awake
        assert ss.stats.sleeps == 0

    def test_stays_awake_when_expectation_is_due(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep()
        table.set_next_receive(1, child=1, time=0.0)
        sim.run(until=1.0)
        assert node.radio.is_awake
        assert ss.stats.kept_awake_expectation_due >= 1

    def test_stays_awake_during_setup_slot(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep(setup_until=1.0)
        table.set_next_receive(1, child=1, time=5.0)
        sim.run(until=0.5)
        assert node.radio.is_awake
        assert ss.stats.kept_awake_setup_slot >= 1
        sim.run(until=2.0)
        assert node.radio.is_asleep

    def test_does_not_sleep_while_mac_has_pending_frame(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep()
        # Give the MAC a frame destined to a sleeping neighbour so it stays
        # busy retrying while the table says the node is otherwise free.
        from repro.net.packet import DataReportPacket

        network.node(1).radio.sleep()
        node.mac.send(DataReportPacket(src=0, dst=1, query_id=1))
        table.set_next_receive(1, child=1, time=5.0)
        sim.run(until=0.001)
        assert node.radio.is_awake
        assert ss.stats.kept_awake_busy_mac >= 1

    def test_sleep_is_re_evaluated_after_mac_drains(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep()
        from repro.net.packet import DataReportPacket

        node.mac.send(DataReportPacket(src=0, dst=1, query_id=1))
        table.set_next_receive(1, child=1, time=5.0)
        sim.run(until=1.0)
        # Once the frame (and its ACK handshake) completes the node sleeps.
        assert node.radio.is_asleep

    def test_disabled_safe_sleep_never_sleeps(self) -> None:
        sim, network, node, table, _ = make_node_with_safe_sleep()
        ss_disabled = SafeSleep(sim, network.node(1).radio, network.node(1).mac, table, enabled=False)
        table.set_next_receive(1, child=0, time=5.0)
        sim.run(until=1.0)
        assert network.node(1).radio.is_awake
        assert ss_disabled.stats.sleeps == 0

    def test_break_even_default_comes_from_radio_profile(self) -> None:
        sim, network, node, table, ss = make_node_with_safe_sleep(profile=MICA2_TYPICAL)
        assert ss.break_even_time == pytest.approx(0.0025)

    def test_receiver_acknowledgement_not_lost_to_sleep(self) -> None:
        """A node that just received a frame sends its ACK before sleeping."""
        sim, network, node, table, ss = make_node_with_safe_sleep()
        from repro.net.packet import DataReportPacket

        # Node 0 is the receiver under Safe Sleep with a far-future expectation;
        # node 1 sends it a data report at t = 0.1.
        table.set_next_receive(1, child=1, time=0.1)
        done = []
        network.node(1).mac.set_send_done_callback(lambda packet, ok: done.append(ok))
        sim.schedule_at(0.1, network.node(1).mac.send, DataReportPacket(src=1, dst=0, query_id=1))
        sim.run(until=1.0)
        # The sender saw a successful (acknowledged) transfer on the first try.
        assert done == [True]
        assert network.node(1).mac.stats.retransmissions == 0
