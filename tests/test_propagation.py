"""Tests for the pluggable propagation layer.

Covers, in order:

* spec plumbing -- validation, serialization round trips, digest
  distinctness of propagation/loss/mobility sweeps,
* **golden parity** -- an explicitly-constructed unit-disk strategy
  reproduces ``tests/golden/hotpath_golden.json`` (metrics cells and trace
  digests) exactly, and zero-sigma shadowing degrades to the identical
  behaviour,
* physics -- shadowing link budgets and gain caching, SINR capture on a
  crafted three-node line, Gilbert-Elliott burstiness and asymmetry,
  random-waypoint movement with neighbour-cache invalidation,
* determinism -- run-twice identity and parallel == serial bit-for-bit for
  one SINR cell and one mobility cell.
"""

from __future__ import annotations

import importlib.util
import json
import os
from pathlib import Path
from typing import ClassVar

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.runner import run_single
from repro.net.channel import WirelessChannel
from repro.net.loss import GilbertElliottLoss, LossSpec, build_loss_from_spec
from repro.net.mobility import MobilitySpec, RandomWaypointMobility, install_mobility
from repro.net.packet import Packet
from repro.net.propagation import (
    BOTH_LOST,
    CAPTURE_NEW,
    KEEP_LOCKED,
    LogDistanceShadowing,
    PropagationSpec,
    SinrCapture,
    UnitDiskPropagation,
    build_propagation_from_spec,
)
from repro.net.topology import Topology
from repro.orchestrator.api import ExperimentSpec, run_experiments
from repro.orchestrator.jobs import (
    RunJob,
    loss_spec_from_dict,
    loss_spec_to_dict,
    mobility_spec_from_dict,
    mobility_spec_to_dict,
    propagation_spec_from_dict,
    propagation_spec_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.query.workload import WorkloadSpec
from repro.radio.radio import Radio
from repro.radio.energy import IDEAL
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

# The regeneration script doubles as the snapshot methodology; loading it by
# path (as test_hotpath_determinism does) keeps this test and the committed
# golden in lock-step.
_spec = importlib.util.spec_from_file_location(
    "make_hotpath_golden_for_propagation", GOLDEN_DIR / "make_hotpath_golden.py"
)
golden_tool = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_tool)


def _family_queries(scenario, protocol, seed):
    return RunJob(
        scenario=scenario,
        protocol=protocol,
        workload=WorkloadSpec(base_rate_hz=2.0),
        seed=seed,
    ).resolve_queries()


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

class TestSpecs:
    def test_propagation_spec_normalizes_and_hashes(self) -> None:
        a = PropagationSpec.make("shadowing", sigma_db=4, exponent=3.0)
        b = PropagationSpec(kind="shadowing", params=(("exponent", 3), ("sigma_db", 4.0)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.param("sigma_db", 0.0) == 4.0
        assert a.param("missing", 7.5) == 7.5
        assert PropagationSpec().is_unit_disk
        assert not a.is_unit_disk

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PropagationSpec(kind="tachyon"),
            lambda: LossSpec(kind="entropy"),
            lambda: MobilitySpec(kind="teleport"),
        ],
    )
    def test_unknown_kinds_rejected(self, factory) -> None:
        with pytest.raises(ValueError):
            factory()

    def test_spec_round_trips(self) -> None:
        propagation = PropagationSpec.make("sinr", capture_db=6.0, sigma_db=2.0)
        loss = LossSpec.make("gilbert-elliott", loss_bad=0.5)
        mobility = MobilitySpec.make(speed=2.0)
        assert propagation_spec_from_dict(propagation_spec_to_dict(propagation)) == propagation
        assert loss_spec_from_dict(loss_spec_to_dict(loss)) == loss
        assert mobility_spec_from_dict(mobility_spec_to_dict(mobility)) == mobility
        assert mobility_spec_from_dict(mobility_spec_to_dict(None)) is None

        scenario = smoke_scale().with_overrides(
            propagation=propagation, loss=loss, mobility=mobility
        )
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_propagation_axes_produce_distinct_digests(self) -> None:
        base = smoke_scale()
        scenarios = [
            base,
            base.with_overrides(propagation=PropagationSpec.make("shadowing", sigma_db=2.0)),
            base.with_overrides(propagation=PropagationSpec.make("shadowing", sigma_db=4.0)),
            base.with_overrides(propagation=PropagationSpec.make("sinr", capture_db=6.0)),
            base.with_overrides(loss=LossSpec.make("gilbert-elliott", loss_bad=0.5)),
            base.with_overrides(mobility=MobilitySpec.make(speed=1.0)),
        ]
        digests = {
            RunJob(
                scenario=scenario,
                protocol="DTS-SS",
                seed=1,
                workload=WorkloadSpec(base_rate_hz=2.0),
            ).digest
            for scenario in scenarios
        }
        assert len(digests) == len(scenarios)

    def test_build_dispatch(self) -> None:
        assert isinstance(build_propagation_from_spec(PropagationSpec()), UnitDiskPropagation)
        shadow = build_propagation_from_spec(
            PropagationSpec.make("shadowing", sigma_db=3.0, exponent=2.5), seed=7
        )
        assert isinstance(shadow, LogDistanceShadowing)
        assert shadow.sigma_db == 3.0 and shadow.exponent == 2.5
        sinr = build_propagation_from_spec(
            PropagationSpec.make("sinr", capture_db=8.0), seed=7
        )
        assert isinstance(sinr, SinrCapture)
        assert sinr.capture_db == 8.0
        assert build_loss_from_spec(LossSpec()) is None
        assert isinstance(
            build_loss_from_spec(LossSpec.make("gilbert-elliott"), seed=3),
            GilbertElliottLoss,
        )


# ---------------------------------------------------------------------------
# Golden parity: the unit-disk strategy IS the paper's channel
# ---------------------------------------------------------------------------

class TestUnitDiskGoldenParity:
    """The explicit unit-disk strategy reproduces the hot-path goldens."""

    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        return json.loads((GOLDEN_DIR / "hotpath_golden.json").read_text())

    def test_explicit_unit_disk_reproduces_golden_metrics(self, golden) -> None:
        for key in ("smoke/DTS-SS/seed=1", "reduced/DTS-SS/seed=1", "reduced/PSM/seed=1"):
            scale, protocol, seed_part = key.split("/")
            seed = int(seed_part.split("=")[1])
            scenario = golden_tool.SCALES[scale]().with_overrides(
                propagation=PropagationSpec(kind="unit-disk"), loss=LossSpec(kind="none")
            )
            queries = _family_queries(scenario, protocol, seed)
            metrics, _ = run_single(scenario, protocol, queries, seed)
            expected = golden["cells"][key]
            assert metrics.average_duty_cycle == expected["average_duty_cycle"], key
            assert metrics.average_query_latency == expected["average_query_latency"], key
            assert metrics.delivery_ratio == expected["delivery_ratio"], key
            assert metrics.deliveries == expected["deliveries"], key
            assert metrics.channel_stats == expected["channel_stats"], key
            per_node = {str(n): v for n, v in sorted(metrics.duty_cycle_per_node.items())}
            assert per_node == expected["duty_cycle_per_node"], key

    def test_explicit_unit_disk_reproduces_golden_trace_digest(self, golden) -> None:
        # ``trace_snapshot`` builds its network with the default channel
        # arguments, i.e. through the strategy layer's unit-disk fast path;
        # matching the committed digest proves that path is bit-for-bit the
        # pre-strategy channel, trace record by trace record.
        for key, expected in golden["traced"].items():
            scale, protocol, seed_part = key.split("/")
            got = golden_tool.trace_snapshot(scale, protocol, int(seed_part.split("=")[1]))
            assert got == expected, f"trace sequence drifted for {key}"

    def test_zero_sigma_shadowing_matches_unit_disk(self) -> None:
        """sigma=0 closes the loop: the shadowing budget at the disk edge
        is exactly the sensitivity threshold, so audibility and every
        downstream metric collapse to the unit disk."""
        scenario = smoke_scale()
        queries = _family_queries(scenario, "DTS-SS", 1)
        default_metrics, _ = run_single(scenario, "DTS-SS", queries, 1)
        shadowed = scenario.with_overrides(
            propagation=PropagationSpec.make("shadowing", sigma_db=0.0)
        )
        shadow_metrics, _ = run_single(shadowed, "DTS-SS", queries, 1)
        assert shadow_metrics == default_metrics


# ---------------------------------------------------------------------------
# Shadowing link budgets
# ---------------------------------------------------------------------------

class TestLogDistanceShadowing:
    def _topology(self) -> Topology:
        return Topology.from_positions([(0.0, 0.0), (40.0, 0.0), (90.0, 0.0)], comm_range=100.0)

    def test_gains_are_cached_symmetric_and_deterministic(self) -> None:
        topology = self._topology()
        a = LogDistanceShadowing(sigma_db=6.0, seed=42)
        a.bind(topology)
        b = LogDistanceShadowing(sigma_db=6.0, seed=42)
        b.bind(topology)
        assert a.gain_db(0, 1) == b.gain_db(0, 1)
        assert a.gain_db(0, 1) == a.gain_db(1, 0)  # symmetric by default
        assert a.gain_db(0, 1) is not None and a.gain_db(0, 2) != a.gain_db(0, 1)
        different_seed = LogDistanceShadowing(sigma_db=6.0, seed=43)
        different_seed.bind(topology)
        assert different_seed.gain_db(0, 1) != a.gain_db(0, 1)

    def test_asymmetric_gains_differ_per_direction(self) -> None:
        topology = self._topology()
        model = LogDistanceShadowing(sigma_db=6.0, symmetric=False, seed=1)
        model.bind(topology)
        assert model.gain_db(0, 1) != model.gain_db(1, 0)

    def test_margin_decreases_with_distance(self) -> None:
        topology = self._topology()
        model = LogDistanceShadowing(sigma_db=0.0)
        model.bind(topology)
        near = model.margin_db(0, 1)   # 40 m
        far = model.margin_db(0, 2)    # 90 m
        assert near > far > 0.0        # both inside the 100 m disk
        assert model.rx_mw(0, 1) > model.rx_mw(0, 2) > 1.0

    def test_zero_sigma_audible_set_is_the_disk(self) -> None:
        topology = self._topology()
        model = LogDistanceShadowing(sigma_db=0.0)
        model.bind(topology)
        neighbors = tuple(topology.neighbors(0))
        assert model.audible(0, neighbors) == neighbors

    def test_deep_shadowing_fades_links_out(self) -> None:
        topology = self._topology()
        model = LogDistanceShadowing(sigma_db=40.0, seed=5)
        model.bind(topology)
        neighbors = tuple(topology.neighbors(0))
        audible = model.audible(0, neighbors)
        assert set(audible) < set(neighbors)  # at 40 dB sigma some link dies
        assert model.stats.faded_links >= 1

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            LogDistanceShadowing(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistanceShadowing(sigma_db=-1.0)
        with pytest.raises(ValueError):
            SinrCapture(capture_db=-3.0)


# ---------------------------------------------------------------------------
# SINR capture on a crafted line
# ---------------------------------------------------------------------------

class _ChannelHarness:
    """A handful of nodes wired to a channel with explicit propagation.

    ``asleep`` nodes start with their radio off (so they neither lock onto
    nor receive early frames) and are woken synchronously right before
    their own scheduled transmissions (the IDEAL profile has zero
    transition latency).
    """

    def __init__(self, positions, comm_range: float, model, asleep=()) -> None:
        self.sim = Simulator(seed=0, trace=TraceRecorder(enabled=False))
        self.topology = Topology.from_positions(positions, comm_range=comm_range)
        self.channel = WirelessChannel(self.sim, self.topology, propagation=model)
        self.delivered: list = []
        self.radios = {}
        for node_id in self.topology.node_ids:
            radio = Radio(self.sim, node_id, IDEAL, start_awake=node_id not in asleep)
            self.radios[node_id] = radio
            self.channel.register(
                node_id,
                radio,
                lambda packet, start, node=node_id: self.delivered.append((node, packet)),
            )

    def transmit_at(self, time: float, sender: int, duration: float) -> Packet:
        packet = Packet(src=sender, dst=-1)

        def fire() -> None:
            radio = self.radios[sender]
            if radio.is_asleep:
                radio.wake_up()  # synchronous: IDEAL has zero wake latency
            self.channel.transmit(sender, packet, duration)

        self.sim.schedule_at(time, fire)
        return packet


class TestSinrCapture:
    """A(0 m) -- B(10 m) ---- C(65 m): A is ~20 dB stronger than C at B."""

    POSITIONS: ClassVar[list] = [(0.0, 0.0), (10.0, 0.0), (65.0, 0.0)]

    def _model(self, capture_db: float = 6.0) -> SinrCapture:
        return SinrCapture(exponent=3.0, sigma_db=0.0, capture_db=capture_db, noise_db=-6.0)

    def test_strong_locked_frame_survives_weak_interferer(self) -> None:
        harness = _ChannelHarness(self.POSITIONS, 60.0, self._model())
        # comm_range 60: A-B and B-C are links, A-C is not.
        strong = harness.transmit_at(0.0, 0, 0.010)
        harness.transmit_at(0.002, 2, 0.010)  # C starts mid-frame
        harness.sim.run(until=0.05)
        received_at_b = [p for node, p in harness.delivered if node == 1]
        assert strong in received_at_b
        assert harness.channel.propagation.stats.capture_wins == 1
        assert harness.channel.stats.collisions == 0

    def test_strong_late_frame_captures_receiver(self) -> None:
        harness = _ChannelHarness(self.POSITIONS, 60.0, self._model())
        harness.transmit_at(0.0, 2, 0.010)   # weak frame locks B first
        strong = harness.transmit_at(0.002, 0, 0.010)
        harness.sim.run(until=0.05)
        received_at_b = [p for node, p in harness.delivered if node == 1]
        assert strong in received_at_b
        assert harness.channel.propagation.stats.capture_switches == 1
        # The weak locked frame was corrupted: that IS a collision.
        assert harness.channel.stats.collisions == 1

    def test_comparable_frames_are_both_lost(self) -> None:
        # Symmetric layout: both senders 30 m from B -> SINR ~ 0 dB < 6 dB.
        harness = _ChannelHarness(
            [(0.0, 0.0), (30.0, 0.0), (60.0, 0.0)], 45.0, self._model()
        )
        harness.transmit_at(0.0, 0, 0.010)
        harness.transmit_at(0.002, 2, 0.010)
        harness.sim.run(until=0.05)
        assert [p for node, p in harness.delivered if node == 1] == []
        assert harness.channel.stats.collisions == 1
        stats = harness.channel.propagation.stats
        assert stats.capture_wins == 0 and stats.capture_switches == 0

    def test_unit_disk_corrupts_where_capture_would_survive(self) -> None:
        """The same overlap under the default model: all-or-nothing loss."""
        harness = _ChannelHarness(self.POSITIONS, 60.0, UnitDiskPropagation())
        strong = harness.transmit_at(0.0, 0, 0.010)
        harness.transmit_at(0.002, 2, 0.010)
        harness.sim.run(until=0.05)
        assert strong not in [p for node, p in harness.delivered if node == 1]
        assert harness.channel.stats.collisions == 1

    def test_idle_receiver_does_not_lock_onto_drowned_frame(self) -> None:
        """Regression: an idle receiver must not acquire a frame whose SINR
        over transmissions already on the air falls below the threshold.

        R is freed mid-air (a capture win ends) while a weak frame W is
        still transmitting; a second weak frame W2 then starts.  W2's SINR
        over W is ~0 dB, so R must stay idle instead of receiving W2
        intact as the unit disk would."""
        # R(0,0); S strong at 5 m; W and W2 both 50 m from R.  W and W2
        # start asleep so they do not lock onto S's frame themselves.
        harness = _ChannelHarness(
            [(0.0, 0.0), (5.0, 0.0), (50.0, 0.0), (0.0, 50.0)],
            60.0,
            self._model(),
            asleep={2, 3},
        )
        strong = harness.transmit_at(0.0, 1, 0.010)
        harness.transmit_at(0.002, 2, 0.030)     # W: long weak frame, lost to capture
        drowned = harness.transmit_at(0.015, 3, 0.010)  # W2 starts while W still on air
        harness.sim.run(until=0.05)
        received_at_r = [p for node, p in harness.delivered if node == 0]
        assert strong in received_at_r           # the capture win delivered
        assert drowned not in received_at_r      # the drowned frame did not
        assert harness.channel.propagation.stats.drowned_frames >= 1

    def test_corrupted_locked_frame_cannot_capture_win(self) -> None:
        """Regression: a locked frame an earlier overlap already corrupted
        must not count a capture win (nor suppress the collision) when a
        later weak frame arrives while its raw SINR still clears the bar."""
        # R(0,0); A at 5 m and B at 6 m (comparable -> mutual corruption);
        # C at 50 m (weak).  B and C start asleep so they do not lock onto
        # A's frame before their own transmissions.
        harness = _ChannelHarness(
            [(0.0, 0.0), (5.0, 0.0), (6.0, 0.0), (50.0, 0.0)],
            60.0,
            self._model(),
            asleep={2, 3},
        )
        corrupted = harness.transmit_at(0.0, 1, 0.030)   # A: long frame, locks R
        harness.transmit_at(0.002, 2, 0.006)             # B: comparable -> both lost
        harness.transmit_at(0.015, 3, 0.010)             # C: weak, after B ended
        harness.sim.run(until=0.06)
        assert corrupted not in [p for node, p in harness.delivered if node == 0]
        stats = harness.channel.propagation.stats
        assert stats.capture_wins == 0
        # B's overlap and C's overlap each count one collision at R.
        assert harness.channel.stats.collisions == 2

    def test_resolve_collision_outcomes_directly(self) -> None:
        model = self._model()
        topology = Topology.from_positions(self.POSITIONS, comm_range=60.0)
        model.bind(topology)
        from repro.net.channel import Transmission

        strong = Transmission(
            sender=0, packet=Packet(src=0, dst=1), start=0.0, end=1.0, receivers={1: True}
        )
        weak = Transmission(
            sender=2, packet=Packet(src=2, dst=1), start=0.0, end=1.0, receivers={1: True}
        )
        covering = [strong, weak]
        assert model.resolve_collision(1, strong, weak, covering) == KEEP_LOCKED
        assert model.resolve_collision(1, weak, strong, covering) == CAPTURE_NEW
        # An impossible threshold forces the unit-disk outcome.
        strict = self._model(capture_db=60.0)
        strict.bind(topology)
        assert strict.resolve_collision(1, strong, weak, covering) == BOTH_LOST


# ---------------------------------------------------------------------------
# Gilbert-Elliott bursty links
# ---------------------------------------------------------------------------

class TestGilbertElliott:
    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(loss_bad=-0.1)

    def test_losses_arrive_in_bursts(self) -> None:
        model = GilbertElliottLoss(
            p_good_to_bad=0.05, p_bad_to_good=0.2, loss_good=0.0, loss_bad=1.0, seed=1
        )
        outcomes = [model.should_drop(0, 1, None) for _ in range(2000)]
        assert model.dropped > 0 and model.delivered > 0
        assert model.bursts > 0
        # Dropped frames must cluster: the number of loss runs is far
        # smaller than the number of losses (independent drops at the same
        # average rate would give runs ~= losses).
        runs = sum(
            1 for i, drop in enumerate(outcomes) if drop and (i == 0 or not outcomes[i - 1])
        )
        assert runs * 2 < model.dropped

    def test_links_are_independent_and_asymmetric(self) -> None:
        model = GilbertElliottLoss(p_good_to_bad=0.3, loss_bad=1.0, loss_good=0.0, seed=9)
        forward = [model.should_drop(0, 1, None) for _ in range(300)]
        reverse = [model.should_drop(1, 0, None) for _ in range(300)]
        assert forward != reverse
        # Interleaving draws on another link must not perturb a link's own
        # chain (per-link RNGs -> draw-order independence).
        replay = GilbertElliottLoss(p_good_to_bad=0.3, loss_bad=1.0, loss_good=0.0, seed=9)
        interleaved = []
        for _ in range(300):
            interleaved.append(replay.should_drop(0, 1, None))
            replay.should_drop(5, 6, None)
        assert interleaved == forward

    def test_determinism_per_seed(self) -> None:
        first = GilbertElliottLoss(seed=4)
        second = GilbertElliottLoss(seed=4)
        assert [first.should_drop(2, 3, None) for _ in range(500)] == [
            second.should_drop(2, 3, None) for _ in range(500)
        ]


# ---------------------------------------------------------------------------
# Random-waypoint mobility
# ---------------------------------------------------------------------------

class TestRandomWaypoint:
    def test_validation(self) -> None:
        sim = Simulator(seed=0, trace=TraceRecorder(enabled=False))
        topology = Topology.grid(rows=2, cols=2, spacing=50.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, topology, speed_min=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, topology, speed_min=2.0, speed_max=1.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, topology, update_interval=0.0)

    def test_update_positions_rebuilds_neighbors_once(self) -> None:
        topology = Topology.line(num_nodes=3, spacing=50.0)
        version = topology.version
        assert 2 not in topology.neighbors(0)
        topology.update_positions({2: topology.positions[1]})
        assert topology.version == version + 1
        assert 2 in topology.neighbors(0)
        with pytest.raises(KeyError):
            topology.update_positions({99: topology.positions[0]})
        topology.update_positions({})  # no-op: no rebuild
        assert topology.version == version + 1

    def test_nodes_move_within_area_and_invalidate_channel_cache(self) -> None:
        sim = Simulator(seed=3, trace=TraceRecorder(enabled=False))
        topology = Topology.random(num_nodes=8, area=(200.0, 200.0), comm_range=80.0, seed=3)
        channel = WirelessChannel(sim, topology)
        before = {n: topology.positions[n] for n in topology.node_ids}
        channel._neighbors_of(0)  # warm the per-sender neighbour cache
        mobility = RandomWaypointMobility(
            sim, topology, speed_min=1.0, speed_max=3.0, pause=1.0, update_interval=0.5
        )
        mobility.start(until=20.0)
        sim.run(until=20.0)
        assert mobility.updates > 0 and mobility.moves > 0
        moved = [n for n in topology.node_ids if topology.positions[n] != before[n]]
        assert moved
        width, height = topology.area
        for position in topology.positions.values():
            assert 0.0 <= position.x <= width and 0.0 <= position.y <= height
        # The channel's cached neighbour tuples follow the rebuilt sets.
        for node in topology.node_ids:
            assert channel._neighbors_of(node) == tuple(topology.neighbors(node))

    def test_movement_is_deterministic_per_seed(self) -> None:
        def final_positions(seed: int):
            sim = Simulator(seed=seed, trace=TraceRecorder(enabled=False))
            topology = Topology.random(num_nodes=6, area=(150.0, 150.0), comm_range=70.0, seed=1)
            install_mobility(MobilitySpec.make(speed=2.0), sim, topology, duration=15.0)
            sim.run(until=15.0)
            return {n: (p.x, p.y) for n, p in topology.positions.items()}

        assert final_positions(7) == final_positions(7)
        assert final_positions(7) != final_positions(8)


# ---------------------------------------------------------------------------
# Determinism of full propagation cells (run-twice, parallel == serial)
# ---------------------------------------------------------------------------

class TestPropagationDeterminism:
    SINR_SCENARIO = None  # set in setup_class to keep collection cheap

    @classmethod
    def setup_class(cls) -> None:
        cls.SINR_SCENARIO = smoke_scale().with_overrides(
            propagation=PropagationSpec.make("sinr", capture_db=6.0, sigma_db=2.0)
        )
        cls.MOBILE_SCENARIO = smoke_scale().with_overrides(
            mobility=MobilitySpec.make(speed=1.5)
        )

    @pytest.mark.parametrize("cell", ["sinr", "mobile"])
    def test_run_twice_identity(self, cell: str) -> None:
        scenario = self.SINR_SCENARIO if cell == "sinr" else self.MOBILE_SCENARIO
        queries = _family_queries(scenario, "DTS-SS", 1)
        first, _ = run_single(scenario, "DTS-SS", queries, 1)
        second, _ = run_single(scenario, "DTS-SS", queries, 1)
        assert first == second

    def test_parallel_equals_serial_bit_for_bit(self) -> None:
        specs = [
            ExperimentSpec(
                scenario=scenario,
                protocol="DTS-SS",
                workload=WorkloadSpec(base_rate_hz=2.0),
                num_runs=2,
            )
            for scenario in (self.SINR_SCENARIO, self.MOBILE_SCENARIO)
        ]
        serial = run_experiments(specs, workers=1)
        parallel = run_experiments(specs, workers=min(2, os.cpu_count() or 1))
        for a, b in zip(serial, parallel, strict=True):
            assert a.metrics == b.metrics
            assert a.per_run_metrics == b.per_run_metrics

    def test_propagation_actually_changes_the_outcome(self) -> None:
        """Guards against a silently-ignored spec: the non-default cells
        must not reproduce the unit-disk metrics."""
        base = smoke_scale()
        queries = _family_queries(base, "DTS-SS", 1)
        default, _ = run_single(base, "DTS-SS", queries, 1)
        sinr, _ = run_single(self.SINR_SCENARIO, "DTS-SS", queries, 1)
        mobile, _ = run_single(self.MOBILE_SCENARIO, "DTS-SS", queries, 1)
        assert sinr != default
        assert mobile != default
