"""Tests for the runtime determinism sanitizer.

Two families: surgical lifecycle tests (install/arm/trip/uninstall, the
guarded hot-site sets, the environment flag), and the end-to-end
guarantees the sanitizer exists for -- a planted wall-clock read inside a
running simulation raises with the offending stack, while a sanitized
smoke-scale run of both protocol families completes clean with metrics
bit-identical to an unsanitized run.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.runner import run_single
from repro.experiments.scenarios import rate_sweep_workload
from repro.query.service import _PeriodWatermark
from repro.query.workload import generate_queries
from repro.sanitizer import (
    ENV_FLAG,
    DeterminismViolation,
    GuardedSet,
    active,
    enabled_by_env,
    install,
    maybe_install_from_env,
    sanitized,
    uninstall,
)
from repro.sim.engine import Simulator


class TestLifecycle:
    def test_install_patches_and_uninstall_restores(self) -> None:
        original_time = time.time
        original_random = random.random
        original_getenv = os.getenv
        original_getitem = type(os.environ).__getitem__
        sanitizer = install()
        try:
            assert sanitizer.installed
            assert time.time is not original_time
            assert random.random is not original_random
            # Disarmed tripwires forward untouched.
            assert isinstance(time.time(), float)
            assert 0.0 <= random.random() < 1.0
        finally:
            uninstall()
        assert time.time is original_time
        assert random.random is original_random
        assert os.getenv is original_getenv
        assert type(os.environ).__getitem__ is original_getitem
        assert not sanitizer.installed
        assert active() is None

    def test_install_is_idempotent(self) -> None:
        first = install()
        try:
            assert install() is first
        finally:
            uninstall()

    def test_engine_hook_is_set_and_cleared(self) -> None:
        assert Simulator.run_watcher is None
        with sanitized() as sanitizer:
            assert Simulator.run_watcher is sanitizer
        assert Simulator.run_watcher is None

    def test_env_flag_controls_maybe_install(self, monkeypatch) -> None:
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not enabled_by_env()
        assert maybe_install_from_env() is None
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not enabled_by_env()
        monkeypatch.setenv(ENV_FLAG, "1")
        assert enabled_by_env()
        try:
            sanitizer = maybe_install_from_env()
            assert sanitizer is not None and sanitizer.installed
            assert active() is sanitizer
            # A second call in the same process reuses the installation.
            assert maybe_install_from_env() is sanitizer
        finally:
            uninstall()

    def test_fixture_installs_for_the_test_body(self, determinism_sanitizer) -> None:
        assert determinism_sanitizer.installed
        assert active() is determinism_sanitizer
        assert Simulator.run_watcher is determinism_sanitizer


class TestTripwires:
    def test_planted_wall_clock_read_is_caught_with_stack(self) -> None:
        with sanitized() as sanitizer:
            sim = Simulator(seed=1)

            def evil() -> float:
                return time.time()

            sim.schedule_at(1.0, evil)
            with pytest.raises(DeterminismViolation) as excinfo:
                sim.run(until=2.0)
        violation = excinfo.value
        assert violation.site == "time.time"
        assert "in evil" in violation.stack  # the planted frame, not ours
        assert "time.time" in str(violation)
        assert [hit.site for hit in sanitizer.hits] == ["time.time"]

    def test_global_random_is_caught(self) -> None:
        with sanitized():
            sim = Simulator(seed=1)
            sim.schedule_at(0.5, random.random)
            with pytest.raises(DeterminismViolation) as excinfo:
                sim.run()
            assert excinfo.value.site == "random.random"

    def test_environment_read_is_caught(self) -> None:
        with sanitized():
            sim = Simulator(seed=1)
            sim.schedule_at(0.5, lambda: os.environ.get("HOME"))
            with pytest.raises(DeterminismViolation) as excinfo:
                sim.run()
            assert excinfo.value.site == "os.environ[...]"

    def test_reads_outside_the_armed_window_pass_through(self) -> None:
        with sanitized():
            # Orchestration-side reads (before/after run()) stay legal.
            assert isinstance(time.perf_counter(), float)
            os.environ.get("HOME")
            sim = Simulator(seed=1)
            sim.schedule_at(0.5, lambda: None)
            sim.run()
            assert isinstance(time.perf_counter(), float)


class TestGuardedSet:
    def test_c_level_operations_bypass_the_guard(self) -> None:
        with sanitized() as sanitizer:
            guarded = GuardedSet({1, 2, 3}, site="probe")
            sanitizer.arm()
            try:
                assert 2 in guarded
                guarded.add(4)
                guarded.discard(4)
                difference = guarded - {1}
                # Difference hands back a plain set: iterating the *result*
                # is the sanctioned idiom (fresh set, sorted before use).
                assert type(difference) is set
                assert difference == {2, 3}
            finally:
                sanitizer.disarm()

    def test_python_iteration_trips_only_while_armed(self) -> None:
        with sanitized() as sanitizer:
            guarded = GuardedSet({1, 2, 3}, site="probe")
            assert sorted(guarded) == [1, 2, 3]  # disarmed: fine
            sanitizer.arm()
            try:
                with pytest.raises(DeterminismViolation) as excinfo:
                    list(guarded)
            finally:
                sanitizer.disarm()
            assert excinfo.value.site == "set-iteration (__iter__) at probe"

    def test_hot_site_classes_get_guarded_sets(self) -> None:
        with sanitized():
            watermark = _PeriodWatermark()
            assert isinstance(watermark.sparse, GuardedSet)
            assert watermark.sparse.site == "repro.query.service._PeriodWatermark.sparse"
        # After uninstall new instances carry plain sets again.
        assert not isinstance(_PeriodWatermark().sparse, GuardedSet)


class TestSanitizedRuns:
    @pytest.mark.parametrize("protocol", ["DTS-SS", "PSM"])
    def test_smoke_run_is_clean_and_bit_identical(self, protocol: str) -> None:
        scenario = smoke_scale()
        queries = generate_queries(rate_sweep_workload(2.0), seed=1)
        baseline, baseline_extras = run_single(scenario, protocol, queries, seed=7)
        with sanitized() as sanitizer:
            guarded, guarded_extras = run_single(scenario, protocol, queries, seed=7)
            assert sanitizer.hits == []
        # RunMetrics equality excludes the wall-clock counter snapshot, so
        # this is the run-twice bitwise-identity contract under tripwires.
        assert guarded == baseline
        assert guarded_extras == baseline_extras
