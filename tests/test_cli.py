"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import FIGURES, SCALES, build_parser, main


class TestParser:
    def test_known_scales_and_figures(self) -> None:
        assert set(SCALES) == {"smoke", "reduced", "paper"}
        assert {"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "overhead"} <= set(
            FIGURES
        )

    def test_parser_requires_a_command(self) -> None:
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_parser_rejects_unknown_figure(self) -> None:
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure", "fig99"])

    def test_parser_accepts_scale_and_runs(self) -> None:
        args = build_parser().parse_args(["--scale", "smoke", "--runs", "2", "figure", "fig3"])
        assert args.scale == "smoke"
        assert args.runs == 2
        assert args.name == "fig3"

    def test_parser_accepts_orchestrator_flags(self) -> None:
        args = build_parser().parse_args(
            ["--jobs", "4", "--cache-dir", "/tmp/essat-cache", "--progress", "figure", "fig3"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/essat-cache"
        assert args.progress is True

    def test_orchestrator_flags_default_off(self) -> None:
        args = build_parser().parse_args(["figure", "fig3"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.progress is False

    def test_invalid_jobs_rejected(self) -> None:
        with pytest.raises(SystemExit):
            main(["--jobs", "0", "list"])


class TestCommands:
    def test_list_command(self) -> None:
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "fig3" in text and "DTS-SS" in text and "smoke" in text

    def test_figure_command_smoke_scale(self) -> None:
        out = io.StringIO()
        code = main(["--scale", "smoke", "--runs", "1", "figure", "fig5"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "Figure 5" in text
        assert "NTS-SS" in text

    def test_overhead_figure_command(self) -> None:
        out = io.StringIO()
        code = main(["--scale", "smoke", "--runs", "1", "figure", "overhead"], out=out)
        assert code == 0
        assert "bits/report" in out.getvalue()

    def test_figure_command_with_jobs_and_cache_dir(self, tmp_path) -> None:
        cache_dir = str(tmp_path / "cache")
        cold = io.StringIO()
        code = main(
            ["--scale", "smoke", "--runs", "1", "--jobs", "2", "--cache-dir", cache_dir,
             "figure", "fig5"],
            out=cold,
        )
        assert code == 0
        shards = list((tmp_path / "cache" / "shards").glob("*.jsonl"))
        assert shards, "cold run must persist results into the sharded store"
        # A warm cache replays the figure without the simulator and must
        # print the identical table.
        warm = io.StringIO()
        code = main(
            ["--scale", "smoke", "--runs", "1", "--cache-dir", cache_dir, "figure", "fig5"],
            out=warm,
        )
        assert code == 0
        assert warm.getvalue() == cold.getvalue()

    def test_scenarios_list_command(self) -> None:
        out = io.StringIO()
        assert main(["--scale", "smoke", "scenarios", "list"], out=out) == 0
        text = out.getvalue()
        for family in ("paper", "reduced", "smoke", "clustered", "corridor",
                       "density", "size", "radio-profiles", "churn"):
            assert family in text

    def test_scenarios_run_command_with_warm_cache(self, tmp_path) -> None:
        cache_dir = str(tmp_path / "cache")
        cold = io.StringIO()
        code = main(
            ["--scale", "smoke", "--cache-dir", cache_dir, "scenarios", "run", "churn"],
            out=cold,
        )
        assert code == 0
        text = cold.getvalue()
        assert "scenario family churn" in text
        assert "fail=30% DTS-SS" in text
        assert "4 executed, 0 from cache" in text
        warm = io.StringIO()
        code = main(
            ["--scale", "smoke", "--cache-dir", cache_dir, "scenarios", "run", "churn"],
            out=warm,
        )
        assert code == 0
        assert "0 executed, 4 from cache" in warm.getvalue()

    def test_scenarios_run_unknown_family(self) -> None:
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "no-such-family"], out=io.StringIO())

    def test_scenarios_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            main(["scenarios"], out=io.StringIO())

    def test_compare_command(self) -> None:
        out = io.StringIO()
        code = main(
            [
                "--scale",
                "smoke",
                "--runs",
                "1",
                "compare",
                "--base-rate",
                "1.0",
                "--protocols",
                "DTS-SS",
                "SPAN",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "DTS-SS" in text and "SPAN" in text
        assert "duty_cycle_%" in text and "lifetime_days" in text
