"""Ablation and failure-injection experiments called out in DESIGN.md.

These tests isolate individual design decisions of the ESSAT protocols:

* Safe Sleep's break-even gating (what the "safe" part buys),
* STS's sensitivity to a mis-chosen deadline (the motivation for DTS),
* graceful degradation under increasing random packet loss.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import EssatProtocolSuite
from repro.net.loss import UniformLoss
from repro.net.node import build_network
from repro.net.topology import Topology
from repro.query.query import QuerySpec
from repro.radio.energy import IDEAL, ZEBRANET
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

CHAIN = Topology.line(5, spacing=100.0, comm_range=120.0)


def run_chain(
    shaper: str,
    *,
    query: QuerySpec,
    duration: float = 20.0,
    profile=IDEAL,
    break_even_time=None,
    loss_model=None,
    seed: int = 0,
):
    sim = Simulator(seed=seed)
    network = build_network(sim, CHAIN, power_profile=profile, loss_model=loss_model)
    tree = build_routing_tree(CHAIN, root=0)
    deliveries = []
    suite = EssatProtocolSuite(
        sim,
        network,
        tree,
        shaper=shaper,
        break_even_time=break_even_time,
        on_root_delivery=lambda qid, k, report, t: deliveries.append((qid, k, t)),
    )
    suite.register_query(query)
    sim.run(until=duration)
    network.finalize()
    return network, tree, suite, deliveries


def average_duty(network, tree) -> float:
    return sum(
        network.node(n).radio.tracker.duty_cycle() for n in tree.nodes
    ) / len(tree.nodes)


class TestBreakEvenGatingAblation:
    def test_gating_avoids_latency_penalty_on_slow_radio(self) -> None:
        """Without break-even gating a slow radio misses reception windows.

        With T_BE = 0 Safe Sleep accepts every sleep opportunity, including
        ones shorter than the ZebraNet radio's 40 ms wake-up; the receiver is
        then still waking up when the report arrives and the MAC has to
        retransmit, inflating latency.  With the correct gate the latency
        stays near the no-sleep baseline.
        """
        query = QuerySpec(query_id=1, period=0.4, start_time=1.0)
        _, tree_gated, _, gated = run_chain(
            "dts", query=query, profile=ZEBRANET, break_even_time=None
        )
        _, tree_free, _, ungated = run_chain(
            "dts", query=query, profile=ZEBRANET, break_even_time=0.0
        )
        assert gated and ungated

        def mean_latency(entries):
            return sum(t - query.report_time(k) for _, k, t in entries) / len(entries)

        # The gated configuration is never slower, and the ungated one pays a
        # visible penalty from retransmissions into a waking radio.
        assert mean_latency(gated) <= mean_latency(ungated) + 1e-6

    def test_gating_never_reduces_delivery_ratio(self) -> None:
        query = QuerySpec(query_id=1, period=0.4, start_time=1.0)
        _, _, _, gated = run_chain("dts", query=query, profile=ZEBRANET)
        _, _, _, ungated = run_chain("dts", query=query, profile=ZEBRANET, break_even_time=0.0)
        assert len(gated) >= len(ungated)


class TestStsDeadlineSensitivityAblation:
    def test_oversized_deadline_costs_latency_without_energy_benefit(self) -> None:
        """Equation 2/3: past the knee, a larger D only adds latency."""
        base = QuerySpec(query_id=1, period=2.0, start_time=1.0, deadline=0.4)
        oversized = QuerySpec(query_id=1, period=2.0, start_time=1.0, deadline=1.6)
        net_a, tree_a, _, deliveries_a = run_chain("sts", query=base, duration=30.0)
        net_b, tree_b, _, deliveries_b = run_chain("sts", query=oversized, duration=30.0)

        def mean_latency(entries, query):
            return sum(t - query.report_time(k) for _, k, t in entries) / len(entries)

        latency_a = mean_latency(deliveries_a, base)
        latency_b = mean_latency(deliveries_b, oversized)
        assert latency_b > 2 * latency_a
        # ... while the duty cycle improves only marginally (if at all).
        assert average_duty(net_b, tree_b) > 0.5 * average_duty(net_a, tree_a)

    def test_dts_without_tuning_matches_well_tuned_sts_latency_class(self) -> None:
        """DTS needs no deadline yet stays in the same latency class as a
        tightly tuned STS (and far below a badly tuned one)."""
        tuned = QuerySpec(query_id=1, period=2.0, start_time=1.0, deadline=0.2)
        untuned = QuerySpec(query_id=1, period=2.0, start_time=1.0)  # D = P = 2 s
        plain = QuerySpec(query_id=1, period=2.0, start_time=1.0)
        _, _, _, sts_tuned = run_chain("sts", query=tuned, duration=30.0)
        _, _, _, sts_untuned = run_chain("sts", query=untuned, duration=30.0)
        _, _, _, dts = run_chain("dts", query=plain, duration=30.0)

        def mean_latency(entries, query):
            return sum(t - query.report_time(k) for _, k, t in entries) / len(entries)

        dts_latency = mean_latency(dts, plain)
        assert dts_latency < mean_latency(sts_untuned, untuned)
        assert dts_latency < 5 * mean_latency(sts_tuned, tuned) + 0.05


class TestLossInjectionSweep:
    @pytest.mark.parametrize("shaper", ["nts", "sts", "dts"])
    def test_delivery_degrades_gracefully_with_loss(self, shaper: str) -> None:
        query = QuerySpec(query_id=1, period=0.5, start_time=1.0)
        delivered = {}
        for loss_rate in (0.0, 0.1, 0.3):
            loss = UniformLoss(loss_rate, streams=RandomStreams(99))
            _, _, _, deliveries = run_chain(
                shaper, query=query, duration=20.0, loss_model=loss, seed=3
            )
            delivered[loss_rate] = len(deliveries)
        # No cliff: even at 30 % per-frame loss (before MAC retries) most
        # periods still reach the root, and delivery never *increases* with
        # loss by more than noise.
        assert delivered[0.0] >= 35
        assert delivered[0.3] >= 0.5 * delivered[0.0]
        assert delivered[0.1] >= delivered[0.3] - 3

    def test_loss_increases_duty_cycle_for_dts(self) -> None:
        """Losses force DTS receivers to idle waiting for resynchronisation."""
        query = QuerySpec(query_id=1, period=0.5, start_time=1.0)
        net_clean, tree, _, _ = run_chain("dts", query=query, duration=20.0, seed=3)
        net_lossy, _, _, _ = run_chain(
            "dts",
            query=query,
            duration=20.0,
            loss_model=UniformLoss(0.2, streams=RandomStreams(5)),
            seed=3,
        )
        assert average_duty(net_lossy, tree) >= average_duty(net_clean, tree)
