"""Regenerate ``hotpath_golden.json`` (run from the repository root).

The golden file pins the exact per-seed behaviour of the simulation hot
path: run metrics (duty cycle, delivery ratio, latency), the full
``ChannelStats`` counter dict, and a digest of the complete trace sequence
for the ``smoke`` and ``reduced`` scenario scales.  The determinism tests in
``tests/test_hotpath_determinism.py`` assert bit-for-bit equality against
it, which is what lets the engine/channel hot path be refactored for speed
without any risk of silently changing results.

The committed snapshot pins the hot-path-overhaul engine *with* the two
channel-fidelity bugfixes (collision window, failure-injection accounting)
applied.  The pure performance refactor was verified bit-for-bit against
the pre-overhaul engine by temporarily disabling those two fixes: every
cell below matched exactly, so all metric movement relative to PR 2 is
attributable to the deliberate fidelity fixes, none to the speedups.

The PR 5 protocol-layer overhaul (TimingTable incremental minimum,
query-service collection pruning, shaper/Safe Sleep dispatch, slotted
packets) was verified the same way: with its three behaviour fixes
(silent no-op table writes, exactly-once collection completion under
mid-timeout child removal, deduplicated DTS phase requests) temporarily
disabled, every golden cell below matched bit-for-bit *and* a paper-scale
30-query DTS-SS replication processed the identical event count.  With the
fixes enabled the snapshot was regenerated and came out byte-identical:
none of the fixed behaviours occurs in these cells, so the golden pins
carried over unchanged.
Regenerate only when a deliberate, reviewed behaviour change occurs::

    PYTHONPATH=src python tests/golden/make_hotpath_golden.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.experiments.config import reduced_scale, smoke_scale
from repro.experiments.metrics import DeliveryLog, collect_metrics
from repro.experiments.runner import (
    build_protocol_suite,
    build_scenario_topology,
    run_single,
)
from repro.experiments.scenarios import rate_sweep_workload
from repro.net.node import build_network
from repro.orchestrator.jobs import RunJob
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

GOLDEN_PATH = Path(__file__).resolve().parent / "hotpath_golden.json"

#: The (scale, protocol, seed) cells the golden file pins.
CELLS = [
    ("smoke", "DTS-SS", 1),
    ("smoke", "DTS-SS", 2),
    ("smoke", "PSM", 1),
    ("reduced", "DTS-SS", 1),
    ("reduced", "PSM", 1),
]

SCALES = {"smoke": smoke_scale, "reduced": reduced_scale}

#: The family workload (see ``repro.scenarios.families``).
WORKLOAD_RATE_HZ = 2.0


def resolve_queries(scenario, protocol, seed):
    """The exact query list a family run would generate for this cell."""
    job = RunJob(
        scenario=scenario,
        protocol=protocol,
        workload=rate_sweep_workload(WORKLOAD_RATE_HZ),
        seed=seed,
    )
    return job.resolve_queries()


def metrics_snapshot(scale_name: str, protocol: str, seed: int) -> dict:
    """Exact metrics of one replication (floats at full precision)."""
    scenario = SCALES[scale_name]()
    queries = resolve_queries(scenario, protocol, seed)
    metrics, _ = run_single(scenario, protocol, queries, seed)
    return {
        "average_duty_cycle": metrics.average_duty_cycle,
        "average_query_latency": metrics.average_query_latency,
        "max_query_latency": metrics.max_query_latency,
        "deliveries": metrics.deliveries,
        "delivery_ratio": metrics.delivery_ratio,
        "channel_stats": metrics.channel_stats,
        "duty_cycle_per_node": {
            str(node): value for node, value in sorted(metrics.duty_cycle_per_node.items())
        },
    }


def trace_snapshot(scale_name: str, protocol: str, seed: int) -> dict:
    """Digest of the full trace sequence of one replication.

    Packet ids come from a process-global counter, so the counter is reset
    first: without this, the digest would depend on how many packets any
    earlier simulation in the same process had created.
    """
    import itertools

    from repro.net import packet as packet_module

    packet_module._packet_ids = itertools.count(1)
    scenario = SCALES[scale_name]()
    queries = resolve_queries(scenario, protocol, seed)
    sim = Simulator(seed=seed, trace=TraceRecorder(enabled=True))
    topology = build_scenario_topology(scenario, seed)
    network = build_network(
        sim,
        topology,
        power_profile=scenario.power_profile,
        mac_config=scenario.mac_config,
    )
    tree = build_routing_tree(
        topology,
        root=topology.center_node(),
        max_distance_from_root=scenario.max_distance_from_root,
    )
    deliveries = DeliveryLog()
    suite = build_protocol_suite(
        protocol,
        sim,
        network,
        tree,
        on_root_delivery=deliveries,
        break_even_time=scenario.break_even_time,
    )
    suite.register_queries(queries)
    sim.run(until=scenario.duration)
    network.finalize()
    digest = hashlib.sha256()
    for record in sim.trace:
        digest.update(
            json.dumps(
                [record.time, record.category, record.node, sorted(record.data.items())],
                sort_keys=True,
                default=str,
            ).encode()
        )
    metrics = collect_metrics(
        protocol,
        network,
        tree,
        deliveries,
        queries,
        scenario.duration,
        measure_from=scenario.measure_from,
    )
    return {
        "trace_records": len(sim.trace),
        "trace_sha256": digest.hexdigest(),
        "processed_events": sim.processed_events,
        "channel_stats": network.channel.stats.as_dict(),
        "average_duty_cycle": metrics.average_duty_cycle,
    }


def main() -> None:
    golden = {"cells": {}, "traced": {}}
    for scale_name, protocol, seed in CELLS:
        key = f"{scale_name}/{protocol}/seed={seed}"
        golden["cells"][key] = metrics_snapshot(scale_name, protocol, seed)
        print("captured metrics", key)
    for scale_name, protocol, seed in [("smoke", "DTS-SS", 1), ("smoke", "PSM", 1)]:
        key = f"{scale_name}/{protocol}/seed={seed}"
        golden["traced"][key] = trace_snapshot(scale_name, protocol, seed)
        print("captured trace", key)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print("wrote", GOLDEN_PATH)


if __name__ == "__main__":
    main()
