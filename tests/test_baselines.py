"""Tests for the SYNC, PSM, SPAN and always-on baseline protocols."""

from __future__ import annotations

import pytest

from repro.baselines.always_on import AlwaysOnSuite
from repro.baselines.psm import PsmConfig, PsmSuite
from repro.baselines.span import SpanConfig, SpanSuite
from repro.baselines.sync import SyncConfig, SyncSuite
from repro.net.node import build_network
from repro.net.topology import Topology
from repro.query.query import QuerySpec
from repro.radio.energy import IDEAL
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator

CHAIN = Topology.line(4, spacing=100.0, comm_range=120.0)
# A small tree with two leaves under one relay, so SPAN has a clear backbone.
TREE = Topology.from_positions(
    [(0, 0), (100, 0), (200, 0), (200, 80), (100, 80)], comm_range=125.0
)
QUERY = QuerySpec(query_id=1, period=1.0, start_time=1.0)


def run_baseline(suite_cls, topology, queries, *, duration=10.0, seed=0, **suite_kwargs):
    sim = Simulator(seed=seed)
    network = build_network(sim, topology, power_profile=IDEAL)
    tree = build_routing_tree(topology, root=0)
    deliveries = []
    suite = suite_cls(
        sim,
        network,
        tree,
        on_root_delivery=lambda qid, k, report, t: deliveries.append((qid, k, report, t)),
        **suite_kwargs,
    )
    suite.register_queries(queries)
    sim.run(until=duration)
    network.finalize()
    return sim, network, tree, suite, deliveries


def duty(network, node_id):
    return network.node(node_id).radio.tracker.duty_cycle()


def mean_latency(deliveries, query):
    values = [t - query.report_time(k) for _, k, _, t in deliveries]
    return sum(values) / len(values)


class TestAlwaysOn:
    def test_delivers_everything_with_full_duty_cycle(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(AlwaysOnSuite, CHAIN, [QUERY])
        assert suite.name == "ALWAYS-ON"
        assert len(deliveries) >= 8
        for node_id in tree.nodes:
            assert duty(network, node_id) == pytest.approx(1.0)


class TestSync:
    def test_config_validation(self) -> None:
        with pytest.raises(ValueError):
            SyncConfig(period=0.0)
        with pytest.raises(ValueError):
            SyncConfig(duty_cycle=0.0)
        with pytest.raises(ValueError):
            SyncConfig(duty_cycle=1.5)
        assert SyncConfig().active_window == pytest.approx(0.04)

    def test_duty_cycle_close_to_configured_value(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(SyncSuite, CHAIN, [QUERY])
        assert suite.name == "SYNC"
        for node_id in tree.nodes:
            # Around 20%, allowing for extra awake time finishing frames.
            assert 0.15 <= duty(network, node_id) <= 0.45

    def test_data_still_delivered(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(SyncSuite, CHAIN, [QUERY])
        assert len(deliveries) >= 7

    def test_latency_reflects_buffering_until_active_window(self) -> None:
        # Use a query whose generation instants do NOT align with the SYNC
        # schedule (the paper notes SYNC's latency depends on exactly this
        # temporal relationship); misaligned reports wait for the next active
        # window at the first hop.
        query = QuerySpec(query_id=1, period=1.0, start_time=1.07)
        sim, network, tree, suite, deliveries = run_baseline(SyncSuite, CHAIN, [query], duration=15.0)
        assert deliveries
        latency = mean_latency(deliveries, query)
        assert 0.01 < latency < 1.0

    def test_higher_duty_cycle_config_lowers_latency(self) -> None:
        low = run_baseline(SyncSuite, CHAIN, [QUERY], duration=15.0, config=SyncConfig(duty_cycle=0.1))
        high = run_baseline(SyncSuite, CHAIN, [QUERY], duration=15.0, config=SyncConfig(duty_cycle=0.6))
        assert mean_latency(high[4], QUERY) <= mean_latency(low[4], QUERY) + 1e-6


class TestPsm:
    def test_config_validation(self) -> None:
        with pytest.raises(ValueError):
            PsmConfig(beacon_period=0.0)
        with pytest.raises(ValueError):
            PsmConfig(atim_window=0.3)
        with pytest.raises(ValueError):
            PsmConfig(atim_window=0.15, advertisement_window=0.1)
        config = PsmConfig()
        assert config.next_beacon(0.0) == pytest.approx(0.0)
        assert config.next_beacon(0.05) == pytest.approx(0.2)
        assert config.next_beacon(0.2) == pytest.approx(0.2)

    def test_delivers_data_and_sends_atims(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(PsmSuite, CHAIN, [QUERY], duration=12.0)
        assert suite.name == "PSM"
        assert len(deliveries) >= 7
        assert suite.total_atims_sent() > 0

    def test_duty_cycle_floor_is_atim_window_fraction(self) -> None:
        # With no queries at all, every node still wakes for the ATIM window.
        sim, network, tree, suite, deliveries = run_baseline(PsmSuite, CHAIN, [], duration=10.0)
        floor = PsmConfig().atim_window / PsmConfig().beacon_period
        for node_id in tree.nodes:
            assert duty(network, node_id) == pytest.approx(floor, abs=0.05)

    def test_latency_is_on_the_order_of_beacon_periods_per_hop(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(PsmSuite, CHAIN, [QUERY], duration=15.0)
        assert deliveries
        latency = mean_latency(deliveries, QUERY)
        # Three hops, each deferring to the next beacon interval (0.2 s).
        assert latency > 0.2

    def test_idle_intervals_sleep_after_atim_window(self) -> None:
        # With a slow query (period 2 s), many beacon intervals carry no
        # traffic, so the duty cycle stays far below always-on.
        slow = QuerySpec(query_id=1, period=2.0, start_time=1.0)
        sim, network, tree, suite, deliveries = run_baseline(PsmSuite, CHAIN, [slow], duration=15.0)
        assert deliveries
        average = sum(duty(network, n) for n in tree.nodes) / len(tree.nodes)
        assert average < 0.5


class TestSpan:
    def test_config_validation(self) -> None:
        with pytest.raises(ValueError):
            SpanConfig(announcement_interval=0.0)

    def test_backbone_is_interior_nodes(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(SpanSuite, TREE, [QUERY])
        assert suite.name == "SPAN"
        assert set(suite.coordinators) == set(tree.interior_nodes)
        assert set(suite.leaf_nodes) == set(tree.leaves)

    def test_backbone_nodes_never_sleep_leaves_do(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(SpanSuite, TREE, [QUERY], duration=12.0)
        for node_id in tree.interior_nodes:
            assert duty(network, node_id) == pytest.approx(1.0)
        for node_id in tree.leaves:
            assert duty(network, node_id) < 0.3

    def test_low_latency_delivery(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(SpanSuite, CHAIN, [QUERY], duration=12.0)
        assert len(deliveries) >= 8
        assert mean_latency(deliveries, QUERY) < 0.05

    def test_coordinator_announcements_sent(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(SpanSuite, TREE, [QUERY], duration=12.0)
        assert suite.coordinator_announcements > 0

    def test_leaves_always_on_when_nts_disabled(self) -> None:
        sim, network, tree, suite, deliveries = run_baseline(
            SpanSuite, TREE, [QUERY], duration=8.0, config=SpanConfig(leaves_run_nts=False)
        )
        for node_id in tree.nodes:
            assert duty(network, node_id) == pytest.approx(1.0)


class TestProtocolComparison:
    """Cross-protocol sanity checks matching the paper's qualitative story."""

    def test_span_has_highest_duty_cycle_ess_at_lowest(self) -> None:
        from repro.core.protocol import EssatProtocolSuite

        query = QuerySpec(query_id=1, period=1.0, start_time=1.0)
        averages = {}
        for name, cls, kwargs in (
            ("span", SpanSuite, {}),
            ("psm", PsmSuite, {}),
            ("sync", SyncSuite, {}),
        ):
            sim, network, tree, suite, deliveries = run_baseline(
                cls, CHAIN, [query], duration=15.0, **kwargs
            )
            averages[name] = sum(duty(network, n) for n in tree.nodes) / len(tree.nodes)

        sim = Simulator(seed=0)
        network = build_network(sim, CHAIN, power_profile=IDEAL)
        tree = build_routing_tree(CHAIN, root=0)
        suite = EssatProtocolSuite(sim, network, tree, shaper="dts")
        suite.register_query(query)
        sim.run(until=15.0)
        network.finalize()
        averages["dts-ss"] = sum(duty(network, n) for n in tree.nodes) / len(tree.nodes)

        assert averages["span"] > averages["psm"]
        assert averages["span"] > averages["dts-ss"]
        assert averages["dts-ss"] < averages["sync"]
        assert averages["dts-ss"] < averages["psm"]
