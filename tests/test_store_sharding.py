"""The sharded result store: layout, legacy migration, compaction, eviction."""

import json
import shutil
from pathlib import Path

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.scenarios import rate_sweep_workload
from repro.orchestrator.codec import SCHEMA_VERSION
from repro.orchestrator.executor import SweepExecutor
from repro.orchestrator.jobs import RunJob
from repro.orchestrator.store import ResultStore, shard_of

FIXTURES = Path(__file__).parent / "fixtures"

#: The current-schema digests of the two jobs baked into the committed v3/v4
#: store fixtures -- RunJob(smoke_scale(), protocol, seed, rate_sweep_workload(2.0)).
FIXTURE_DIGESTS = {
    "DTS-SS": "39f02bb383f7f0e5c4ed00402704e55f43f976291a4ddfaa8e3b9df29dc7c246",
    "PSM": "040c687cc63d9ec382729e8f93d097d4022094742b0444c4c23973ce77c62225",
}


def _record(payload: str = "x", size: int = 0) -> dict:
    record = {"metrics": {"payload": payload}, "extras": {}, "elapsed": 0.0}
    if size:
        record["pad"] = "p" * size
    return record


def _digest(i: int) -> str:
    # Distinct two-hex prefixes so each record lands in its own shard.
    return f"{i:02x}" + "0" * 62


class TestShardLayout:
    def test_put_lands_in_prefix_shard(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        digest = "ab" + "c" * 62
        store.put(digest, _record())
        shard = tmp_path / "shards" / "ab.jsonl"
        assert shard.exists()
        assert store.shard_path(digest) == shard
        assert shard_of(digest) == "ab"
        lines = shard.read_text().strip().splitlines()
        assert len(lines) == 1
        stored = json.loads(lines[0])
        assert stored["digest"] == digest
        assert stored["version"] == SCHEMA_VERSION

    def test_reload_restores_index(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        for i in range(5):
            store.put(_digest(i), _record(payload=str(i)))
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 5
        assert reopened.stats.shards == 5
        for i in range(5):
            assert reopened.get(_digest(i))["metrics"]["payload"] == str(i)

    def test_truncated_tail_is_skipped_on_load(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        store.put(_digest(1), _record())
        shard = store.shard_path(_digest(1))
        with shard.open("a", encoding="utf-8") as handle:
            handle.write('{"digest": "truncat')  # interrupted append
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.stats.skipped == 1


class TestLegacyMigration:
    def test_current_version_single_file_is_absorbed(self, tmp_path) -> None:
        digest = _digest(7)
        record = dict(_record(payload="legacy"), digest=digest, version=SCHEMA_VERSION)
        (tmp_path / "results.jsonl").write_text(
            json.dumps(record, sort_keys=True) + "\n"
        )
        store = ResultStore(tmp_path)
        assert digest in store
        assert not (tmp_path / "results.jsonl").exists()
        assert store.shard_path(digest).exists()
        # Stable across a second open: no legacy file left to re-migrate.
        reopened = ResultStore(tmp_path)
        assert reopened.get(digest)["metrics"]["payload"] == "legacy"
        assert reopened.stats.migrated == 0

    @pytest.mark.parametrize("era", ["store_v3", "store_v4"])
    def test_committed_old_schema_fixture_migrates(self, era, tmp_path) -> None:
        shutil.copy(FIXTURES / era / "results.jsonl", tmp_path / "results.jsonl")
        store = ResultStore(tmp_path)
        assert store.stats.migrated == 2
        assert not (tmp_path / "results.jsonl").exists()
        for protocol, digest in FIXTURE_DIGESTS.items():
            record = store.get(digest)
            assert record is not None, f"{era} record for {protocol} not re-keyed"
            assert record["version"] == SCHEMA_VERSION
            assert record["job"]["protocol"] == protocol
        # The migrated layout must be stable: reopening touches nothing.
        reopened = ResultStore(tmp_path)
        assert reopened.stats.migrated == 0
        assert set(FIXTURE_DIGESTS.values()) <= set(reopened.digests())

    def test_migrated_fixture_is_a_cache_hit_for_current_jobs(self, tmp_path) -> None:
        """The acceptance bar: a v3-era store warms a current-schema sweep."""
        shutil.copy(
            FIXTURES / "store_v3" / "results.jsonl", tmp_path / "results.jsonl"
        )
        store = ResultStore(tmp_path)
        job = RunJob(
            scenario=smoke_scale(),
            protocol="DTS-SS",
            seed=1001,
            workload=rate_sweep_workload(2.0),
        )
        assert job.digest == FIXTURE_DIGESTS["DTS-SS"]
        executor = SweepExecutor(store=store)
        results = executor.run([job])
        assert executor.last_executed == 0
        assert executor.last_cached == 1
        assert results[0].cached


class TestCompaction:
    def test_compact_drops_superseded_lines_keeps_newest(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        digest = _digest(3)
        store.put(digest, _record(payload="old"))
        store.put(digest, _record(payload="new"))
        shard = store.shard_path(digest)
        assert len(shard.read_text().strip().splitlines()) == 2
        removed = store.compact()
        assert removed == 1
        lines = shard.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["metrics"]["payload"] == "new"
        assert store.get(digest)["metrics"]["payload"] == "new"
        assert store.stats.compacted == 1

    def test_compact_is_idempotent(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        store.put(_digest(1), _record())
        store.put(_digest(1), _record(payload="newest"))
        assert store.compact() == 1
        assert store.compact() == 0
        assert store.get(_digest(1))["metrics"]["payload"] == "newest"


class TestEviction:
    def test_eviction_drops_oldest_first_and_protects_last_write(
        self, tmp_path
    ) -> None:
        store = ResultStore(tmp_path)
        store.put(_digest(0), _record(size=400))
        bound = store.total_bytes + 100  # room for ~one record
        bounded = ResultStore(tmp_path, max_bytes=bound)
        bounded.put(_digest(1), _record(size=400))
        # The oldest digest went; the just-written one survived.
        assert _digest(0) not in bounded
        assert _digest(1) in bounded
        assert bounded.stats.evicted == 1
        assert bounded.total_bytes <= bound
        # The evicted digest's shard is gone from disk too.
        assert not bounded.shard_path(_digest(0)).exists()

    def test_eviction_never_drops_newest_record_of_survivors(self, tmp_path) -> None:
        store = ResultStore(tmp_path, max_bytes=100_000)
        survivor = _digest(9)
        store.put(survivor, _record(payload="v1", size=200))
        store.put(survivor, _record(payload="v2", size=200))
        for i in range(8):
            store.put(_digest(i), _record(size=200))
        store.max_bytes = store.total_bytes - 1
        store.put(_digest(10), _record(size=200))
        assert store.stats.evicted > 0
        if survivor in store:
            assert store.get(survivor)["metrics"]["payload"] == "v2"
        # Reload agrees with the in-memory index exactly.
        reopened = ResultStore(tmp_path)
        assert sorted(reopened.digests()) == sorted(store.digests())

    def test_bound_below_one_record_still_serves_latest(self, tmp_path) -> None:
        store = ResultStore(tmp_path, max_bytes=1)
        store.put(_digest(4), _record(size=300))
        assert _digest(4) in store
        store.put(_digest(5), _record(size=300))
        assert _digest(5) in store
        assert _digest(4) not in store

    def test_rejects_nonpositive_bound(self, tmp_path) -> None:
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(tmp_path, max_bytes=0)
