"""Tests for the experiment harness: configs, metrics, runner, tables, figures."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    FULL_SCALE_ENV_VAR,
    ScenarioConfig,
    default_scale,
    full_scale_requested,
    paper_scale,
    reduced_scale,
    smoke_scale,
)
from repro.experiments.metrics import (
    DeliveryLog,
    RunMetrics,
    average_metrics,
    collect_metrics,
    expected_periods,
)
from repro.experiments.runner import (
    ALL_PROTOCOLS,
    build_protocol_suite,
    run_experiment,
    run_protocol_comparison,
)
from repro.experiments.scenarios import (
    base_rates,
    deadline_sweep_workload,
    query_count_workload,
    query_counts,
    rate_sweep_workload,
)
from repro.experiments.tables import FigureResult, Series, comparison_table
from repro.net.node import build_network
from repro.net.topology import Topology
from repro.query.query import QuerySpec
from repro.query.report import DataReport
from repro.query.aggregation import AggregationFunction, PartialAggregate
from repro.radio.energy import IDEAL
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator


class TestScenarioConfig:
    def test_paper_scale_matches_section5(self) -> None:
        scenario = paper_scale()
        assert scenario.num_nodes == 80
        assert scenario.area == (500.0, 500.0)
        assert scenario.comm_range == 125.0
        assert scenario.max_distance_from_root == 300.0
        assert scenario.duration == 200.0
        assert scenario.num_runs == 5
        assert scenario.mac_config.bandwidth_bps == pytest.approx(1e6)

    def test_reduced_and_smoke_scales_are_smaller(self) -> None:
        assert reduced_scale().num_nodes < paper_scale().num_nodes
        assert smoke_scale().num_nodes < reduced_scale().num_nodes
        assert reduced_scale().duration < paper_scale().duration

    def test_with_overrides(self) -> None:
        scenario = reduced_scale().with_overrides(duration=5.0, break_even_time=0.01)
        assert scenario.duration == 5.0
        assert scenario.break_even_time == 0.01
        assert scenario.num_nodes == reduced_scale().num_nodes

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            ScenarioConfig(num_nodes=1)
        with pytest.raises(ValueError):
            ScenarioConfig(duration=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(num_runs=0)

    def test_full_scale_env_var(self, monkeypatch) -> None:
        monkeypatch.delenv(FULL_SCALE_ENV_VAR, raising=False)
        assert not full_scale_requested()
        assert default_scale().num_nodes == reduced_scale().num_nodes
        monkeypatch.setenv(FULL_SCALE_ENV_VAR, "1")
        assert full_scale_requested()
        assert default_scale().num_nodes == paper_scale().num_nodes


class TestScenarios:
    def test_sweeps_change_with_scale(self) -> None:
        assert len(base_rates(full_scale=True)) > len(base_rates(full_scale=False))
        assert len(query_counts(full_scale=True)) > len(query_counts(full_scale=False))

    def test_rate_sweep_workload(self) -> None:
        workload = rate_sweep_workload(5.0)
        assert workload.base_rate_hz == 5.0
        assert workload.queries_per_class == 1
        assert workload.total_queries == 3

    def test_query_count_workload_uses_base_rate_02(self) -> None:
        workload = query_count_workload(4)
        assert workload.base_rate_hz == pytest.approx(0.2)
        assert workload.total_queries == 12

    def test_deadline_sweep_workload(self) -> None:
        workload = deadline_sweep_workload(0.3)
        assert workload.deadline == pytest.approx(0.3)


class TestMetrics:
    def _report(self, query_id: int, k: int, nominal: float) -> DataReport:
        return DataReport(
            query_id=query_id,
            report_index=k,
            aggregate=PartialAggregate.from_sample(AggregationFunction.AVG, 1.0),
            nominal_time=nominal,
            generated_at=nominal,
        )

    def test_delivery_log_latency(self) -> None:
        log = DeliveryLog()
        log(1, 0, self._report(1, 0, nominal=2.0), 2.5)
        log(1, 1, self._report(1, 1, nominal=3.0), 3.25)
        assert len(log) == 2
        assert log.latencies() == [pytest.approx(0.5), pytest.approx(0.25)]
        assert log.latencies(since=3.0) == [pytest.approx(0.25)]

    def test_expected_periods(self) -> None:
        query = QuerySpec(query_id=1, period=1.0, start_time=2.0)
        assert expected_periods(query, duration=10.0) == 9
        assert expected_periods(query, duration=10.0, margin=1.0) == 8
        assert expected_periods(query, duration=1.0) == 0

    def test_average_metrics(self) -> None:
        def metrics(duty: float, latency: float) -> RunMetrics:
            return RunMetrics(
                protocol="X",
                duration=10.0,
                average_duty_cycle=duty,
                duty_cycle_per_node={0: duty},
                duty_cycle_by_rank={0: duty},
                average_query_latency=latency,
                max_query_latency=latency,
                deliveries=10,
                delivery_ratio=1.0,
                energy_per_node={0: duty * 10},
                sleep_intervals=[0.1],
            )

        merged = average_metrics([metrics(0.2, 0.1), metrics(0.4, 0.3)])
        assert merged.average_duty_cycle == pytest.approx(0.3)
        assert merged.average_query_latency == pytest.approx(0.2)
        assert merged.duty_cycle_per_node[0] == pytest.approx(0.3)
        assert len(merged.sleep_intervals) == 2
        with pytest.raises(ValueError):
            average_metrics([])

    def test_average_metrics_single_run_passthrough(self) -> None:
        log = DeliveryLog()
        single = RunMetrics(
            protocol="X",
            duration=1.0,
            average_duty_cycle=0.5,
            duty_cycle_per_node={},
            duty_cycle_by_rank={},
            average_query_latency=0.0,
            max_query_latency=0.0,
            deliveries=0,
            delivery_ratio=0.0,
            energy_per_node={},
        )
        assert average_metrics([single]) is single


class TestDeliveryRatio:
    """Regression: duplicate root deliveries must not inflate the ratio."""

    def _collect(self, sim, line_topology, deliveries, queries, duration):
        network = build_network(sim, line_topology, power_profile=IDEAL)
        tree = build_routing_tree(line_topology)
        return collect_metrics("X", network, tree, deliveries, queries, duration)

    def _deliver(self, log: DeliveryLog, query_id: int, k: int, nominal: float) -> None:
        report = DataReport(
            query_id=query_id,
            report_index=k,
            aggregate=PartialAggregate.from_sample(AggregationFunction.AVG, 1.0),
            nominal_time=nominal,
            generated_at=nominal,
        )
        log(query_id, k, report, nominal + 0.1)

    def test_duplicate_deliveries_counted_once(self, sim, line_topology) -> None:
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0)
        log = DeliveryLog()
        # 5 expected periods (k = 0..4: duration 5, margin = one period);
        # period 0 is delivered four times (re-forwarded duplicates at the
        # root) and period 1 once -- only 2 periods actually made it.
        for _ in range(4):
            self._deliver(log, 1, 0, nominal=0.0)
        self._deliver(log, 1, 1, nominal=1.0)
        metrics = self._collect(sim, line_topology, log, [query], duration=5.0)
        # Pre-fix: min(1.0, 5/5) == 1.0 although 3 of 5 periods were lost.
        assert metrics.delivery_ratio == pytest.approx(2.0 / 5.0)
        assert metrics.deliveries == 5  # the raw count still sees duplicates

    def test_unique_deliveries_give_full_ratio(self, sim, line_topology) -> None:
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0)
        log = DeliveryLog()
        for k in range(5):
            self._deliver(log, 1, k, nominal=float(k))
        metrics = self._collect(sim, line_topology, log, [query], duration=5.0)
        assert metrics.delivery_ratio == pytest.approx(1.0)
        # No duplicates: distinct (query, period) pairs == raw deliveries.
        pairs = {(r.query_id, r.report_index) for r in log.records}
        assert len(pairs) == len(log.records)

    def test_margin_periods_do_not_push_ratio_past_one(self, sim, line_topology) -> None:
        # A delivery for a period inside the end-of-run margin is excluded
        # from the numerator just as it is from the denominator.
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0)
        log = DeliveryLog()
        for k in range(6):  # period 5 falls past the margin-trimmed horizon
            self._deliver(log, 1, k, nominal=float(k))
        metrics = self._collect(sim, line_topology, log, [query], duration=5.0)
        assert metrics.delivery_ratio == pytest.approx(1.0)


class TestTables:
    def test_series_validation(self) -> None:
        with pytest.raises(ValueError):
            Series(name="x", x=[1.0], y=[])

    def test_figure_table_rendering(self) -> None:
        figure = FigureResult(
            figure_id="Figure X",
            title="test",
            x_label="rate",
            y_label="duty",
            series=[
                Series(name="A", x=[1.0, 2.0], y=[0.1, 0.2]),
                Series(name="B", x=[1.0], y=[0.3]),
            ],
            notes={"knee": 1.0},
        )
        table = figure.to_table()
        assert "Figure X" in table
        assert "rate" in table and "A" in table and "B" in table
        assert "-" in table  # missing B value at x=2
        assert "knee" in table
        assert figure.get("A").value_at(2.0) == pytest.approx(0.2)
        with pytest.raises(KeyError):
            figure.get("missing")

    def test_comparison_table(self) -> None:
        text = comparison_table(
            {"DTS-SS": {"duty": 0.1, "latency": 0.02}, "SPAN": {"duty": 0.5, "latency": 0.01}},
            ["duty", "latency"],
        )
        assert "DTS-SS" in text and "SPAN" in text and "duty" in text


class TestRunner:
    def test_unknown_protocol_rejected(self) -> None:
        sim = Simulator(seed=0)
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        network = build_network(sim, topo, power_profile=IDEAL)
        tree = build_routing_tree(topo, root=0)
        with pytest.raises(ValueError):
            build_protocol_suite("TDMA", sim, network, tree, on_root_delivery=lambda *a: None)

    def test_every_known_protocol_builds(self) -> None:
        for protocol in ALL_PROTOCOLS:
            sim = Simulator(seed=0)
            topo = Topology.line(3, spacing=100.0, comm_range=120.0)
            network = build_network(sim, topo, power_profile=IDEAL)
            tree = build_routing_tree(topo, root=0)
            suite = build_protocol_suite(
                protocol, sim, network, tree, on_root_delivery=lambda *a: None
            )
            assert suite.name == protocol

    def test_run_experiment_requires_exactly_one_workload_source(self) -> None:
        scenario = smoke_scale()
        with pytest.raises(ValueError):
            run_experiment(scenario, "DTS-SS")
        with pytest.raises(ValueError):
            run_experiment(
                scenario,
                "DTS-SS",
                workload=rate_sweep_workload(1.0),
                queries=[QuerySpec(query_id=1, period=1.0)],
            )

    def test_run_experiment_smoke(self) -> None:
        scenario = smoke_scale()
        result = run_experiment(
            scenario, "DTS-SS", workload=rate_sweep_workload(1.0), num_runs=1
        )
        assert result.protocol == "DTS-SS"
        assert result.metrics.deliveries > 0
        assert 0.0 < result.metrics.average_duty_cycle < 1.0
        assert result.metrics.delivery_ratio > 0.8
        assert result.metrics.average_query_latency > 0.0
        assert "overhead_bits_per_report" in result.extras

    def test_run_experiment_with_fixed_queries_and_replications(self) -> None:
        scenario = smoke_scale().with_overrides(duration=8.0)
        queries = [QuerySpec(query_id=1, period=1.0, start_time=1.0)]
        result = run_experiment(scenario, "NTS-SS", queries=queries, num_runs=2)
        assert len(result.per_run_metrics) == 2
        assert result.metrics.deliveries > 0

    def test_protocol_comparison_smoke(self) -> None:
        scenario = smoke_scale()
        results = run_protocol_comparison(
            scenario,
            ["DTS-SS", "SPAN"],
            workload=rate_sweep_workload(1.0),
            num_runs=1,
        )
        assert set(results) == {"DTS-SS", "SPAN"}
        # The qualitative headline: the backbone protocol burns more energy.
        assert (
            results["DTS-SS"].metrics.average_duty_cycle
            < results["SPAN"].metrics.average_duty_cycle
        )

    def test_replications_are_deterministic_for_fixed_seed(self) -> None:
        scenario = smoke_scale()
        first = run_experiment(scenario, "NTS-SS", workload=rate_sweep_workload(1.0), num_runs=1)
        second = run_experiment(scenario, "NTS-SS", workload=rate_sweep_workload(1.0), num_runs=1)
        assert first.metrics.average_duty_cycle == pytest.approx(
            second.metrics.average_duty_cycle
        )
        assert first.metrics.average_query_latency == pytest.approx(
            second.metrics.average_query_latency
        )
