"""Tests for the radio state machine, energy model and duty-cycle accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.duty_cycle import (
    DutyCycleTracker,
    fraction_shorter_than,
    histogram_sleep_intervals,
)
from repro.radio.energy import (
    IDEAL,
    MICA2_TYPICAL,
    MICA2_WORST,
    ZEBRANET,
    PowerProfile,
    break_even_time,
    sleep_energy_saving,
)
from repro.radio.radio import Radio, RadioError
from repro.radio.states import RadioState, is_active, is_asleep
from repro.sim.engine import Simulator


class TestPowerProfiles:
    def test_break_even_equals_transition_time_when_cheap_transitions(self) -> None:
        assert break_even_time(MICA2_TYPICAL) == pytest.approx(0.0025)
        assert break_even_time(MICA2_WORST) == pytest.approx(0.010)
        assert break_even_time(ZEBRANET) == pytest.approx(0.040)
        assert break_even_time(IDEAL) == 0.0

    def test_break_even_grows_when_transition_power_exceeds_active(self) -> None:
        expensive = PowerProfile(
            name="expensive",
            idle_power=0.03,
            sleep_power=0.0,
            transition_power=0.06,
            t_off_to_on=0.002,
            t_on_to_off=0.001,
        )
        t_be = break_even_time(expensive)
        assert t_be > expensive.transition_time

    def test_break_even_infinite_when_sleep_saves_nothing(self) -> None:
        useless = PowerProfile(
            name="useless",
            idle_power=0.03,
            sleep_power=0.03,
            transition_power=0.06,
            t_off_to_on=0.002,
            t_on_to_off=0.0,
        )
        assert break_even_time(useless) == float("inf")

    def test_with_break_even_time_round_trips(self) -> None:
        for target in (0.0, 0.0025, 0.010, 0.040):
            profile = IDEAL.with_break_even_time(target)
            assert break_even_time(profile) == pytest.approx(target)

    def test_with_break_even_time_rejects_negative(self) -> None:
        with pytest.raises(ValueError):
            IDEAL.with_break_even_time(-1.0)

    def test_power_lookup_per_state(self) -> None:
        profile = MICA2_TYPICAL
        assert profile.power(RadioState.TX) == profile.tx_power
        assert profile.power(RadioState.RX) == profile.rx_power
        assert profile.power(RadioState.IDLE) == profile.idle_power
        assert profile.power(RadioState.OFF) == profile.sleep_power
        assert profile.power(RadioState.TURNING_ON) == profile.transition_power

    def test_sleep_energy_saving_positive_beyond_break_even(self) -> None:
        t_be = break_even_time(MICA2_TYPICAL)
        assert sleep_energy_saving(MICA2_TYPICAL, t_be * 4) > 0

    def test_sleep_energy_saving_zero_or_negative_below_transition_time(self) -> None:
        assert sleep_energy_saving(MICA2_TYPICAL, 0.0001) <= 0


class TestStates:
    def test_active_classification(self) -> None:
        assert is_active(RadioState.IDLE)
        assert is_active(RadioState.TX)
        assert is_active(RadioState.RX)
        assert is_active(RadioState.TURNING_ON)
        assert not is_active(RadioState.OFF)

    def test_asleep_classification(self) -> None:
        assert is_asleep(RadioState.OFF)
        assert not is_asleep(RadioState.IDLE)


class TestRadioStateMachine:
    def test_starts_awake_and_idle(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL)
        assert radio.state is RadioState.IDLE
        assert radio.is_awake
        assert radio.can_receive

    def test_sleep_and_wake_with_zero_transition(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL)
        assert radio.sleep()
        assert radio.is_asleep
        radio.wake_up()
        assert radio.is_awake

    def test_sleep_refused_while_transmitting(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL)
        radio.start_tx()
        assert not radio.sleep()
        assert radio.refused_sleeps == 1
        radio.end_tx()
        assert radio.sleep()

    def test_sleep_refused_while_receiving(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL)
        radio.start_rx()
        assert not radio.sleep()
        radio.end_rx()

    def test_wake_takes_transition_time(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, MICA2_TYPICAL)
        radio.sleep()
        assert radio.is_asleep
        radio.wake_up()
        assert radio.state is RadioState.TURNING_ON
        sim.run(until=0.0025)
        assert radio.is_awake

    def test_sleep_until_wakes_on_time(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, MICA2_TYPICAL)
        woke_at = []
        radio.on_wake(lambda: woke_at.append(sim.now))
        assert radio.sleep_until(0.5)
        sim.run(until=1.0)
        assert woke_at == [pytest.approx(0.5)]
        assert radio.is_awake

    def test_sleep_until_refused_when_interval_too_short(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, MICA2_TYPICAL)
        # Wake time closer than the off->on transition: refuse to sleep.
        assert not radio.sleep_until(0.001)
        assert radio.is_awake
        assert radio.refused_sleeps == 1

    def test_wake_during_turn_off_completes_and_wakes(self) -> None:
        profile = PowerProfile(name="slow-off", t_off_to_on=0.002, t_on_to_off=0.003)
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, profile)
        radio.sleep()
        assert radio.state is RadioState.TURNING_OFF
        radio.wake_up()
        sim.run(until=0.010)
        assert radio.is_awake

    def test_tx_from_sleep_raises(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL)
        radio.sleep()
        with pytest.raises(RadioError):
            radio.start_tx()

    def test_end_tx_without_start_raises(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL)
        with pytest.raises(RadioError):
            radio.end_tx()

    def test_wake_listeners_called_each_wake(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL)
        count = []
        radio.on_wake(lambda: count.append(1))
        radio.sleep()
        radio.wake_up()
        radio.sleep()
        radio.wake_up()
        assert len(count) == 2
        assert radio.wake_count == 2

    def test_start_asleep(self, sim: Simulator) -> None:
        radio = Radio(sim, 0, IDEAL, start_awake=False)
        assert radio.is_asleep


class TestDutyCycleTracker:
    def test_all_idle_gives_full_duty_cycle(self) -> None:
        tracker = DutyCycleTracker(IDEAL)
        tracker.close(10.0)
        assert tracker.duty_cycle() == pytest.approx(1.0)

    def test_half_sleep_gives_half_duty_cycle(self) -> None:
        tracker = DutyCycleTracker(IDEAL)
        tracker.record_state(5.0, RadioState.OFF)
        tracker.close(10.0)
        assert tracker.duty_cycle() == pytest.approx(0.5)
        assert tracker.sleep_time() == pytest.approx(5.0)
        assert tracker.active_time() == pytest.approx(5.0)

    def test_sleep_intervals_recorded(self) -> None:
        tracker = DutyCycleTracker(IDEAL)
        tracker.record_state(1.0, RadioState.OFF)
        tracker.record_state(1.5, RadioState.IDLE)
        tracker.record_state(3.0, RadioState.OFF)
        tracker.record_state(3.2, RadioState.IDLE)
        tracker.close(4.0)
        assert tracker.sleep_intervals == [pytest.approx(0.5), pytest.approx(0.2)]

    def test_open_sleep_interval_closed_at_end(self) -> None:
        tracker = DutyCycleTracker(IDEAL)
        tracker.record_state(8.0, RadioState.OFF)
        tracker.close(10.0)
        assert tracker.sleep_intervals == [pytest.approx(2.0)]

    def test_energy_accounting(self) -> None:
        tracker = DutyCycleTracker(MICA2_TYPICAL)
        tracker.record_state(1.0, RadioState.TX)  # 1 s idle
        tracker.record_state(2.0, RadioState.OFF)  # 1 s tx
        tracker.close(4.0)  # 2 s off
        expected = (
            1.0 * MICA2_TYPICAL.idle_power
            + 1.0 * MICA2_TYPICAL.tx_power
            + 2.0 * MICA2_TYPICAL.sleep_power
        )
        assert tracker.energy_consumed() == pytest.approx(expected)

    def test_backwards_time_rejected(self) -> None:
        tracker = DutyCycleTracker(IDEAL)
        tracker.record_state(2.0, RadioState.OFF)
        with pytest.raises(ValueError):
            tracker.record_state(1.0, RadioState.IDLE)

    def test_close_is_idempotent(self) -> None:
        tracker = DutyCycleTracker(IDEAL)
        tracker.close(1.0)
        tracker.close(1.0)
        assert tracker.total_time() == pytest.approx(1.0)

    def test_radio_integration_records_duty_cycle(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, IDEAL)
        sim.schedule_at(2.0, radio.sleep)
        sim.schedule_at(6.0, radio.wake_up)
        sim.run(until=10.0)
        radio.finalize()
        assert radio.tracker.duty_cycle() == pytest.approx(0.6)
        assert radio.tracker.sleep_intervals == [pytest.approx(4.0)]


class TestSleepHistogram:
    def test_histogram_bins_are_25ms_wide(self) -> None:
        intervals = [0.010, 0.030, 0.049, 0.050, 0.051]
        hist = histogram_sleep_intervals(intervals, bin_width=0.025)
        as_dict = {round(edge, 3): count for edge, count in hist}
        assert as_dict[0.025] == 1
        assert as_dict[0.05] == 3  # 0.030, 0.049 and the edge value 0.050
        assert as_dict[0.075] == 1

    def test_histogram_empty(self) -> None:
        assert histogram_sleep_intervals([]) == []

    def test_histogram_clamps_to_max_value(self) -> None:
        hist = histogram_sleep_intervals([0.01, 5.0], bin_width=0.025, max_value=0.2)
        assert sum(count for _, count in hist) == 2
        assert max(edge for edge, _ in hist) == pytest.approx(0.2)

    def test_histogram_rejects_bad_bin_width(self) -> None:
        with pytest.raises(ValueError):
            histogram_sleep_intervals([0.1], bin_width=0.0)

    def test_fraction_shorter_than(self) -> None:
        intervals = [0.001, 0.002, 0.1, 0.2]
        assert fraction_shorter_than(intervals, 0.0025) == pytest.approx(0.5)
        assert fraction_shorter_than([], 0.0025) == 0.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
            st.sampled_from(list(RadioState)),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_state_times_sum_to_total(transitions: list[tuple[float, RadioState]]) -> None:
    """Time accounted across states always sums to the observation window."""
    tracker = DutyCycleTracker(IDEAL)
    now = 0.0
    for delta, state in transitions:
        now += delta
        tracker.record_state(now, state)
    end = now + 1.0
    tracker.close(end)
    assert tracker.total_time() == pytest.approx(end)
    assert tracker.active_time() + tracker.sleep_time() == pytest.approx(end)
    assert 0.0 <= tracker.duty_cycle() <= 1.0
