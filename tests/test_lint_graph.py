"""Whole-program lint tests: the project graph, REP100/101/102, the
incremental cache, and the SARIF reporter.

The fixtures build a synthetic ``src/repro/...`` tree under ``tmp_path``
(the layer map keys off the ``repro`` package root, so the synthetic
packages reuse real package names: ``net`` is simulation, ``obs`` and
``orchestrator`` are orchestration).  Each whole-program rule is proven
twice, like the file-local rules in ``test_lint.py``: it *fires* on a
minimal violating tree and it *stays silent* on the sanctioned idiom its
docstring names.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.base import FileContext
from repro.lint.cache import DEFAULT_CACHE_NAME
from repro.lint.cli import main as lint_main
from repro.lint.graph import Layer, build_project_graph
from repro.lint.layers import FIREWALL_EXEMPT_EDGES
from repro.lint.reporters import render_sarif, sarif_dict
from repro.lint.runner import lint_paths


def write_module(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def make_tree(tmp_path: Path) -> Path:
    """A minimal repro-shaped tree with one violation per rule family.

    * ``net.channel`` (simulation) imports ``obs.metrics`` (orchestration)
      at module level -> REP100, and calls ``stamp()`` which reaches
      ``time.time`` -> REP101.
    * ``net.node`` imports ``net.channel`` (sim -> sim; extends the
      firewall chain but is itself clean).
    * ``orchestrator.jobs`` registers a drifted codec table -> REP102.
    """
    root = tmp_path / "src" / "repro"
    write_module(root, "net/__init__.py", "")
    write_module(
        root,
        "net/channel.py",
        """
        from ..obs.metrics import stamp


        def on_packet():
            return stamp()
        """,
    )
    write_module(
        root,
        "net/node.py",
        """
        from .channel import on_packet


        def deliver():
            return on_packet()
        """,
    )
    write_module(root, "obs/__init__.py", "")
    write_module(
        root,
        "obs/metrics.py",
        """
        import time


        def stamp():
            return time.time()
        """,
    )
    write_module(root, "orchestrator/__init__.py", "")
    write_module(
        root,
        "orchestrator/codec.py",
        """
        SCHEMA_VERSION = 5
        SUPPORTED_VERSIONS = (3, 4, SCHEMA_VERSION)


        class Field:
            pass


        def atom(name, **kwargs):
            return Field()


        def register(cls, *fields, construct=None):
            return None
        """,
    )
    write_module(
        root,
        "orchestrator/jobs.py",
        """
        from dataclasses import dataclass

        from .codec import atom, register


        @dataclass(frozen=True)
        class Spec:
            alpha: int
            beta: float
            gamma: str = "x"


        register(
            Spec,
            atom("alpha"),
            atom("beta"),
            atom("betta"),
            atom("late", since=4),
            atom("bogus", since=9),
        )
        """,
    )
    return root


def contexts_for(root: Path) -> list:
    return [
        FileContext(str(path), path.read_text(encoding="utf-8"))
        for path in sorted(root.rglob("*.py"))
    ]


def findings_for(root: Path, code: str) -> list:
    return [f for f in lint_paths([root], select=[code]).findings if f.code == code]


class TestProjectGraph:
    def test_module_names_and_layers(self, tmp_path: Path) -> None:
        graph = build_project_graph(contexts_for(make_tree(tmp_path)))
        assert {"net", "net.channel", "net.node", "obs.metrics", "orchestrator.codec"} <= set(
            graph.modules
        )
        assert graph.modules["net"].is_package
        assert graph.modules["net.channel"].layer is Layer.SIMULATION
        assert graph.modules["obs.metrics"].layer is Layer.ORCHESTRATION

    def test_relative_imports_resolve_to_internal_modules(self, tmp_path: Path) -> None:
        graph = build_project_graph(contexts_for(make_tree(tmp_path)))
        channel = graph.modules["net.channel"]
        assert any(edge.target == "obs.metrics" for edge in channel.imports)
        assert channel.bindings.get("stamp") == "obs.metrics.stamp"

    def test_hazard_chain_walks_cross_module_calls(self, tmp_path: Path) -> None:
        graph = build_project_graph(contexts_for(make_tree(tmp_path)))
        chain = graph.hazard_chain("obs.metrics.stamp")
        assert chain is not None
        assert chain[0] == "obs.metrics.stamp"
        assert chain[-1].startswith("time.time")

    def test_hazard_chain_none_for_pure_functions(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        write_module(
            root,
            "obs/pure.py",
            """
            def double(x):
                return 2 * x
            """,
        )
        graph = build_project_graph(contexts_for(root))
        assert graph.hazard_chain("obs.pure.double") is None

    def test_import_chain_shows_upstream_sim_importers(self, tmp_path: Path) -> None:
        graph = build_project_graph(contexts_for(make_tree(tmp_path)))
        chain = graph.import_chain_to(graph.modules["net.channel"])
        assert chain == ["net.node", "net.channel"]


class TestREP100LayerFirewall:
    def test_fires_on_sim_importing_orchestration(self, tmp_path: Path) -> None:
        findings = findings_for(make_tree(tmp_path), "REP100")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path.endswith("net/channel.py")
        assert finding.line == 2
        assert "net.channel" in finding.message
        assert "obs.metrics" in finding.message
        assert "net.node -> net.channel" in finding.message  # the chain

    def test_silent_on_type_checking_guarded_import(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        write_module(
            root,
            "net/channel.py",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from ..obs.metrics import stamp


            def on_packet():
                return 0
            """,
        )
        assert findings_for(root, "REP100") == []

    def test_silent_on_sim_to_sim_import(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        findings = findings_for(root, "REP100")
        assert all(not f.path.endswith("net/node.py") for f in findings)

    def test_exempt_edge_is_honoured(self, tmp_path: Path, monkeypatch) -> None:
        root = make_tree(tmp_path)
        monkeypatch.setitem(FIREWALL_EXEMPT_EDGES, ("net", "obs"), "test exemption")
        assert findings_for(root, "REP100") == []

    def test_inline_suppression_applies_to_project_findings(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        write_module(
            root,
            "net/channel.py",
            """
            from ..obs.metrics import stamp  # reprolint: disable=REP100,REP101 reason=test fixture


            def on_packet():
                return stamp()  # reprolint: disable=REP101 reason=test fixture
            """,
        )
        assert lint_paths([root], select=["REP100", "REP101"]).findings == []


class TestREP101TransitiveHazard:
    def test_fires_on_cross_module_wall_clock_chain(self, tmp_path: Path) -> None:
        findings = findings_for(make_tree(tmp_path), "REP101")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path.endswith("net/channel.py")
        assert "net.channel.on_packet -> obs.metrics.stamp -> time.time" in finding.message

    def test_silent_when_helper_is_pure(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        write_module(
            root,
            "obs/metrics.py",
            """
            def stamp():
                return 0.0
            """,
        )
        assert findings_for(root, "REP101") == []

    def test_direct_hazards_are_not_duplicated(self, tmp_path: Path) -> None:
        # A direct time.time() inside a sim module is REP001's finding;
        # REP101 owns only the cross-module chains.
        root = tmp_path / "src" / "repro"
        write_module(
            root,
            "net/direct.py",
            """
            import time


            def stamp():
                return time.time()
            """,
        )
        assert findings_for(root, "REP101") == []
        assert [f.code for f in findings_for(root, "REP001")] == ["REP001"]


class TestREP102CodecDrift:
    def test_drifted_table_is_caught(self, tmp_path: Path) -> None:
        findings = findings_for(make_tree(tmp_path), "REP102")
        messages = "\n".join(f.message for f in findings)
        assert "codec field `betta` does not exist" in messages
        assert "`Spec.gamma`" in messages and "no codec entry" in messages
        assert "since=9" in messages and "SCHEMA_VERSION" in messages
        assert "since=4" in messages and "no default" in messages
        assert all(f.path.endswith("orchestrator/jobs.py") for f in findings)

    def test_duplicate_field_is_caught(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        write_module(
            root,
            "orchestrator/jobs.py",
            """
            from dataclasses import dataclass

            from .codec import atom, register


            @dataclass(frozen=True)
            class Spec:
                alpha: int


            register(Spec, atom("alpha"), atom("alpha"))
            """,
        )
        findings = findings_for(root, "REP102")
        assert [f.message for f in findings] == [
            "duplicate codec field `alpha` for Spec"
        ]

    def test_silent_on_matching_table(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        write_module(
            root,
            "orchestrator/jobs.py",
            """
            from dataclasses import dataclass

            from .codec import atom, register


            @dataclass(frozen=True)
            class Spec:
                alpha: int
                beta: float
                gamma: str = "x"


            register(
                Spec,
                atom("alpha"),
                atom("beta"),
                atom("gamma", since=5, default="x"),
            )
            """,
        )
        assert findings_for(root, "REP102") == []

    def test_dynamic_entries_disable_missing_field_check(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        write_module(
            root,
            "orchestrator/jobs.py",
            """
            from dataclasses import dataclass

            from .codec import atom, register


            @dataclass(frozen=True)
            class Spec:
                alpha: int
                beta: float


            def dynamic():
                return atom("beta")


            register(Spec, atom("alpha"), dynamic())
            """,
        )
        # `beta` is contributed dynamically: the table is incomplete, so
        # the missing-field comparison would be a half-truth and is skipped.
        assert findings_for(root, "REP102") == []


class TestIncrementalCache:
    def test_warm_run_replays_identical_findings(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        cache = tmp_path / DEFAULT_CACHE_NAME
        cold = lint_paths([root], cache_path=cache)
        assert cache.is_file()
        warm = lint_paths([root], cache_path=cache)
        assert [f.as_dict() for f in warm.findings] == [
            f.as_dict() for f in cold.findings
        ]
        assert warm.files_checked == cold.files_checked

    def test_file_edit_invalidates_its_entry_and_project_findings(
        self, tmp_path: Path
    ) -> None:
        root = make_tree(tmp_path)
        cache = tmp_path / DEFAULT_CACHE_NAME
        cold = lint_paths([root], cache_path=cache)
        assert "REP101" in cold.counts
        # Neutralise the helper: the cross-module chain must disappear even
        # though net/channel.py itself (the finding's file) is unchanged --
        # whole-program findings are keyed on the digest of the entire set.
        write_module(
            root,
            "obs/metrics.py",
            """
            def stamp():
                return 0.0
            """,
        )
        warm = lint_paths([root], cache_path=cache)
        assert "REP101" not in warm.counts

    def test_corrupt_cache_is_a_miss_not_an_error(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        cache = tmp_path / DEFAULT_CACHE_NAME
        cache.write_text("{not json", encoding="utf-8")
        result = lint_paths([root], cache_path=cache)
        assert result.files_checked == 8

    def test_cache_stores_raw_findings_pre_suppression(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        cache = tmp_path / DEFAULT_CACHE_NAME
        lint_paths([root], cache_path=cache)
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["fingerprint"]
        assert payload["project"]["tree_digest"]
        suppressed = [
            entry
            for entry in payload["files"].values()
            for s in entry["suppressions"]
            if s.get("used")
        ]
        assert suppressed == []  # `used` flags must never persist

    def test_cli_no_cache_skips_cache_file(self, tmp_path: Path, monkeypatch) -> None:
        root = make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert lint_main(["--no-cache", str(root)], out=out) == 1
        assert not (tmp_path / DEFAULT_CACHE_NAME).exists()

    def test_cli_cache_path_writes_cache(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        cache = tmp_path / "custom_cache.json"
        out = io.StringIO()
        assert lint_main(["--cache-path", str(cache), str(root)], out=out) == 1
        assert cache.is_file()
        again = io.StringIO()
        assert lint_main(["--cache-path", str(cache), str(root)], out=again) == 1
        assert again.getvalue() == out.getvalue()


class TestSarifReporter:
    @pytest.fixture
    def result(self, tmp_path: Path, monkeypatch):
        root = make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)  # SARIF URIs are rendered cwd-relative
        return lint_paths([root.relative_to(tmp_path)])

    def test_sarif_shape(self, result) -> None:
        payload = sarif_dict(result)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"REP000", "REP100", "REP101", "REP102"} <= rule_ids
        assert run["results"], "fixture tree must produce findings"
        for item in run["results"]:
            assert item["ruleId"] in rule_ids
            location = item["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert not location["artifactLocation"]["uri"].startswith("/")

    def test_render_sarif_is_deterministic_json(self, result) -> None:
        rendered = render_sarif(result)
        assert json.loads(rendered)["version"] == "2.1.0"
        assert rendered == render_sarif(result)

    def test_cli_sarif_format(self, tmp_path: Path) -> None:
        root = make_tree(tmp_path)
        out = io.StringIO()
        assert lint_main(["--format", "sarif", "--no-cache", str(root)], out=out) == 1
        payload = json.loads(out.getvalue())
        codes = {item["ruleId"] for item in payload["runs"][0]["results"]}
        assert {"REP100", "REP101", "REP102"} <= codes
