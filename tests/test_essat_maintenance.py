"""Tests for ESSAT protocol maintenance under node failures (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.core.maintenance import EssatMaintenance
from repro.core.protocol import EssatProtocolSuite
from repro.net.loss import ScriptedLoss
from repro.net.node import build_network
from repro.net.packet import DataReportPacket
from repro.net.topology import Topology
from repro.query.query import QuerySpec
from repro.radio.energy import IDEAL
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator

# Chain 0 - 1 - 2 - 3 - 4 plus node 5 connected to both 0 and 2, so that
# node 1's failure can be repaired by re-parenting node 2 under node 5.
REPAIRABLE = Topology.from_positions(
    [(0, 0), (100, 0), (200, 0), (300, 0), (400, 0), (100, 60)], comm_range=125.0
)

QUERY = QuerySpec(query_id=1, period=1.0, start_time=1.0)


def build_suite(shaper: str, topology: Topology = REPAIRABLE, seed: int = 0, loss_model=None):
    sim = Simulator(seed=seed)
    network = build_network(sim, topology, power_profile=IDEAL, loss_model=loss_model)
    tree = build_routing_tree(topology, root=0)
    deliveries = []
    suite = EssatProtocolSuite(
        sim,
        network,
        tree,
        shaper=shaper,
        on_root_delivery=lambda qid, k, report, t: deliveries.append((qid, k, report, t)),
    )
    return sim, network, tree, suite, deliveries


class TestNodeFailureRecovery:
    @pytest.mark.parametrize("shaper", ["nts", "sts", "dts"])
    def test_data_keeps_flowing_after_interior_node_fails(self, shaper: str) -> None:
        sim, network, tree, suite, deliveries = build_suite(shaper)
        suite.register_query(QUERY)
        maintenance = EssatMaintenance(suite, network)
        sim.schedule_at(5.0, maintenance.fail_node, 1)
        sim.run(until=15.0)
        network.finalize()
        # Reports from the deep leaf (node 4) must still reach the root after
        # the failure: its path re-routes 4 -> 3 -> 2 -> 5 -> 0.
        late = [entry for entry in deliveries if entry[3] > 6.0]
        assert late, f"{shaper}: no deliveries after the failure"
        assert any(entry[2].contributing_sources >= 1 for entry in late)
        report = maintenance.handled_failures[0]
        assert report.repair.reattached == {2: 5}

    def test_sts_reschedules_after_rank_change(self) -> None:
        sim, network, tree, suite, deliveries = build_suite("sts")
        suite.register_query(QUERY)
        maintenance = EssatMaintenance(suite, network)
        sim.schedule_at(5.0, maintenance.fail_node, 1)
        sim.run(until=12.0)
        report = maintenance.handled_failures[0]
        # Node 5 (new parent, rank grew) and node 2 (orphan) must recompute
        # their STS schedules.
        assert 5 in report.reschedule_updates or 2 in report.reschedule_updates
        summary = maintenance.maintenance_cost_summary()
        assert summary["failures_handled"] == 1
        assert summary["reschedule_updates"] >= 1

    def test_dts_needs_only_a_phase_update(self) -> None:
        sim, network, tree, suite, deliveries = build_suite("dts")
        suite.register_query(QUERY)
        maintenance = EssatMaintenance(suite, network)
        sim.schedule_at(5.0, maintenance.fail_node, 1)
        sim.run(until=12.0)
        report = maintenance.handled_failures[0]
        assert report.phase_updates_forced == [2]
        assert report.reschedule_updates == []

    def test_nts_needs_no_reschedule_and_no_phase_update(self) -> None:
        sim, network, tree, suite, deliveries = build_suite("nts")
        suite.register_query(QUERY)
        maintenance = EssatMaintenance(suite, network)
        sim.schedule_at(5.0, maintenance.fail_node, 1)
        sim.run(until=12.0)
        report = maintenance.handled_failures[0]
        assert report.reschedule_updates == []
        assert report.phase_updates_forced == []

    def test_leaf_failure_prunes_dependency(self) -> None:
        # Star root 0 with leaves 1, 2: failing leaf 2 must not stall the query.
        star = Topology.from_positions([(0, 0), (60, 0), (0, 60)], comm_range=80.0)
        sim, network, tree, suite, deliveries = build_suite("dts", topology=star)
        suite.register_query(QUERY)
        maintenance = EssatMaintenance(suite, network)
        sim.schedule_at(4.0, maintenance.fail_node, 2)
        sim.run(until=12.0)
        late = [entry for entry in deliveries if entry[3] > 5.0]
        assert late
        for entry in late:
            assert entry[2].contributing_sources == 1

    def test_failed_node_removed_from_suite(self) -> None:
        sim, network, tree, suite, deliveries = build_suite("dts")
        suite.register_query(QUERY)
        maintenance = EssatMaintenance(suite, network)
        sim.schedule_at(3.0, maintenance.fail_node, 1)
        sim.run(until=6.0)
        assert 1 not in suite.nodes
        assert network.node(1).failed


class TestTransientLossRecovery:
    def test_dts_resynchronises_after_dropped_phase_update(self) -> None:
        """Drop one report (and its retries) on one link; DTS must resynchronise."""
        drop_window = (3.0, 3.4)

        class WindowLoss:
            def __init__(self) -> None:
                self.dropped = 0

            def should_drop(self, src, dst, packet) -> bool:
                if not isinstance(packet, DataReportPacket):
                    return False
                if src == 2 and dst == 1 and drop_window[0] <= packet.created_at <= drop_window[1]:
                    self.dropped += 1
                    return True
                return False

        chain = Topology.line(4, spacing=100.0, comm_range=120.0)
        loss = WindowLoss()
        sim, network, tree, suite, deliveries = build_suite("dts", topology=chain, loss_model=loss)
        query = QuerySpec(query_id=1, period=0.5, start_time=1.0)
        suite.register_query(query)
        sim.run(until=12.0)
        network.finalize()
        assert loss.dropped > 0
        # Deliveries resume after the loss window closes: essentially every
        # period between t=6 and t=12 reaches the root.
        after = [entry for entry in deliveries if entry[3] > 6.0]
        assert len(after) >= 10
        # The transient loss must not have permanently severed the 2 -> 1
        # dependency: node 1 still aggregates reports from node 2.
        node1 = suite.node(1)
        runtime_children = [
            child
            for query in node1.service.registered_queries()
            for child in [2]
            if node1.shaper.expected_receive_time(query.query_id, child) is not None
        ]
        assert runtime_children == [2]
        # Resynchronisation happened either via an explicit sequence-gap
        # recovery or via a piggybacked phase update on the next report.
        gaps = sum(s.stats.sequence_gaps_detected for s in suite.shapers())
        piggybacked = sum(s.stats.phase_updates_piggybacked for s in suite.shapers())
        assert gaps + piggybacked >= 1

    def test_nts_and_sts_tolerate_transient_loss_without_control_traffic(self) -> None:
        class EveryFifthLoss:
            def __init__(self) -> None:
                self.count = 0

            def should_drop(self, src, dst, packet) -> bool:
                if not isinstance(packet, DataReportPacket):
                    return False
                self.count += 1
                return self.count % 5 == 0

        for shaper in ("nts", "sts"):
            chain = Topology.line(4, spacing=100.0, comm_range=120.0)
            sim, network, tree, suite, deliveries = build_suite(
                shaper, topology=chain, loss_model=EveryFifthLoss()
            )
            query = QuerySpec(query_id=1, period=0.5, start_time=1.0)
            suite.register_query(query)
            sim.run(until=10.0)
            assert deliveries
            # Schedule-based shapers never exchange synchronisation traffic.
            assert all(s.stats.phase_updates_requested == 0 for s in suite.shapers())
            assert all(s.stats.control_overhead_bytes == 0 for s in suite.shapers())
