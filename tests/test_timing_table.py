"""Unit tests for the expected send/receive timing table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timing import TimingTable


class TestTimingTable:
    def test_empty_table(self) -> None:
        table = TimingTable()
        assert table.next_wakeup() is None
        assert table.is_empty()
        assert table.query_ids() == []

    def test_set_and_read_expectations(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, child=5, time=2.0)
        table.set_next_send(1, time=3.0)
        assert table.next_receive(1, 5) == 2.0
        assert table.next_send(1) == 3.0
        assert table.next_receive(1, 99) is None
        assert table.next_send(2) is None

    def test_next_wakeup_is_minimum_over_all_entries(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, child=5, time=2.0)
        table.set_next_receive(1, child=6, time=1.5)
        table.set_next_send(1, time=3.0)
        table.set_next_receive(2, child=5, time=0.7)
        assert table.next_wakeup() == pytest.approx(0.7)

    def test_listeners_notified_on_every_change(self) -> None:
        table = TimingTable()
        calls = []
        table.subscribe(lambda: calls.append(1))
        table.set_next_receive(1, 2, 1.0)
        table.set_next_send(1, 2.0)
        table.remove_child(1, 2)
        table.remove_query(1)
        assert len(calls) == 4

    def test_remove_child_and_query(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, 2, 1.0)
        table.set_next_receive(1, 3, 2.0)
        table.set_next_send(1, 5.0)
        table.remove_child(1, 2)
        assert table.next_receive(1, 2) is None
        assert table.next_wakeup() == pytest.approx(2.0)
        table.remove_query(1)
        assert table.is_empty()

    def test_remove_missing_entries_is_silent_and_does_not_notify(self) -> None:
        table = TimingTable()
        calls = []
        table.subscribe(lambda: calls.append(1))
        table.remove_child(1, 2)
        table.remove_query(7)
        table.clear_next_send(3)
        assert calls == []

    def test_clear_next_send(self) -> None:
        table = TimingTable()
        table.set_next_send(1, 4.0)
        table.clear_next_send(1)
        assert table.next_send(1) is None
        assert table.is_empty()

    def test_entries_listing(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, 2, 1.0)
        table.set_next_send(1, 2.0)
        entries = table.entries()
        assert (1, "receive", 2, 1.0) in entries
        assert (1, "send", None, 2.0) in entries


class TestNoOpWrites:
    """Regression: writing the stored value must not notify listeners.

    Before the fix, ``set_next_receive``/``set_next_send`` fired every
    listener even when the written value was unchanged, scheduling a
    spurious Safe Sleep re-evaluation per no-op write.
    """

    def test_noop_set_next_receive_is_silent(self) -> None:
        table = TimingTable()
        calls: list = []
        table.subscribe(lambda: calls.append(1))
        table.set_next_receive(1, child=2, time=1.5)
        assert len(calls) == 1
        table.set_next_receive(1, child=2, time=1.5)
        assert len(calls) == 1, "no-op write must not notify"
        assert table.next_receive(1, 2) == pytest.approx(1.5)

    def test_noop_set_next_send_is_silent(self) -> None:
        table = TimingTable()
        calls: list = []
        table.subscribe(lambda: calls.append(1))
        table.set_next_send(1, time=2.5)
        assert len(calls) == 1
        table.set_next_send(1, time=2.5)
        assert len(calls) == 1, "no-op write must not notify"
        assert table.next_send(1) == pytest.approx(2.5)

    def test_changed_write_still_notifies(self) -> None:
        table = TimingTable()
        calls: list = []
        table.subscribe(lambda: calls.append(1))
        table.set_next_receive(1, child=2, time=1.5)
        table.set_next_receive(1, child=2, time=1.5)
        table.set_next_receive(1, child=2, time=2.5)
        table.set_next_send(1, time=3.0)
        table.set_next_send(1, time=3.0)
        table.set_next_send(1, time=4.0)
        assert len(calls) == 4
        assert table.next_wakeup() == pytest.approx(2.5)


class TestEdgeCases:
    def test_clear_next_send_on_root_is_silent(self) -> None:
        # A root's table holds only reception expectations; clearing the
        # (never set) send expectation must be a silent no-op.
        table = TimingTable()
        calls: list = []
        table.subscribe(lambda: calls.append(1))
        table.set_next_receive(1, child=2, time=1.0)
        table.clear_next_send(1)
        assert len(calls) == 1
        assert table.next_wakeup() == pytest.approx(1.0)

    def test_remove_last_child_of_last_query_reports_idle(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, child=2, time=1.0)
        table.set_next_receive(2, child=3, time=2.0)
        table.remove_query(1)
        assert not table.is_empty()
        table.remove_child(2, 3)
        assert table.is_empty()
        assert table.next_wakeup() is None
        # And the table comes back to life after a fresh expectation.
        table.set_next_send(3, 5.0)
        assert table.next_wakeup() == pytest.approx(5.0)

    def test_unsubscribe_stops_notifications(self) -> None:
        table = TimingTable()
        calls: list = []
        listener = lambda: calls.append(1)  # noqa: E731
        table.subscribe(listener)
        table.set_next_send(1, 1.0)
        table.unsubscribe(listener)
        table.set_next_send(1, 2.0)
        assert len(calls) == 1

    def test_unsubscribe_unknown_listener_is_noop(self) -> None:
        table = TimingTable()
        table.unsubscribe(lambda: None)  # must not raise

    def test_unsubscribe_freshly_rebound_method(self) -> None:
        # Each attribute access creates a new bound-method object, so the
        # removal must compare by equality, not identity.
        class Subscriber:
            def __init__(self) -> None:
                self.calls = 0

            def on_change(self) -> None:
                self.calls += 1

        table = TimingTable()
        subscriber = Subscriber()
        table.subscribe(subscriber.on_change)
        table.set_next_send(1, 1.0)
        table.unsubscribe(subscriber.on_change)  # a *different* bound object
        table.set_next_send(1, 2.0)
        assert subscriber.calls == 1

    def test_unsubscribe_during_notify(self) -> None:
        # A listener that unsubscribes itself from inside the notification:
        # the in-flight notification completes (both listeners run), and
        # subsequent notifications skip the unsubscribed one.
        table = TimingTable()
        calls: list = []

        def self_removing() -> None:
            calls.append("self_removing")
            table.unsubscribe(self_removing)

        table.subscribe(self_removing)
        table.subscribe(lambda: calls.append("other"))
        table.set_next_send(1, 1.0)
        assert calls == ["self_removing", "other"]
        table.set_next_send(1, 2.0)
        assert calls == ["self_removing", "other", "other"]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),  # query id
            st.integers(min_value=0, max_value=6),  # child id
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            st.booleans(),  # receive vs send entry
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_next_wakeup_is_global_minimum(entries) -> None:
    table = TimingTable()
    expected: dict = {}
    for query_id, child, time, is_receive in entries:
        if is_receive:
            table.set_next_receive(query_id, child, time)
            expected[(query_id, "r", child)] = time
        else:
            table.set_next_send(query_id, time)
            expected[(query_id, "s", None)] = time
    assert table.next_wakeup() == pytest.approx(min(expected.values()))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set_recv", "set_send", "del_child", "clear_send", "del_query"]),
            st.integers(min_value=1, max_value=3),  # query id
            st.integers(min_value=0, max_value=3),  # child id
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_min_cache_survives_mixed_updates_and_removals(ops) -> None:
    """The incrementally maintained minimum equals a model's after every op.

    Exercises the cache-displacement paths (overwriting or removing the
    current minimum) that the set-only property test above never hits.
    """
    table = TimingTable()
    model: dict = {}
    for op, query_id, child, time in ops:
        if op == "set_recv":
            table.set_next_receive(query_id, child, time)
            model[(query_id, "r", child)] = time
        elif op == "set_send":
            table.set_next_send(query_id, time)
            model[(query_id, "s", None)] = time
        elif op == "del_child":
            table.remove_child(query_id, child)
            model.pop((query_id, "r", child), None)
        elif op == "clear_send":
            table.clear_next_send(query_id)
            model.pop((query_id, "s", None), None)
        else:
            table.remove_query(query_id)
            for key in [key for key in model if key[0] == query_id]:
                del model[key]
        if model:
            assert table.next_wakeup() == pytest.approx(min(model.values()))
        else:
            assert table.next_wakeup() is None
            assert table.is_empty()
