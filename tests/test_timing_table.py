"""Unit tests for the expected send/receive timing table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timing import TimingTable


class TestTimingTable:
    def test_empty_table(self) -> None:
        table = TimingTable()
        assert table.next_wakeup() is None
        assert table.is_empty()
        assert table.query_ids() == []

    def test_set_and_read_expectations(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, child=5, time=2.0)
        table.set_next_send(1, time=3.0)
        assert table.next_receive(1, 5) == 2.0
        assert table.next_send(1) == 3.0
        assert table.next_receive(1, 99) is None
        assert table.next_send(2) is None

    def test_next_wakeup_is_minimum_over_all_entries(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, child=5, time=2.0)
        table.set_next_receive(1, child=6, time=1.5)
        table.set_next_send(1, time=3.0)
        table.set_next_receive(2, child=5, time=0.7)
        assert table.next_wakeup() == pytest.approx(0.7)

    def test_listeners_notified_on_every_change(self) -> None:
        table = TimingTable()
        calls = []
        table.subscribe(lambda: calls.append(1))
        table.set_next_receive(1, 2, 1.0)
        table.set_next_send(1, 2.0)
        table.remove_child(1, 2)
        table.remove_query(1)
        assert len(calls) == 4

    def test_remove_child_and_query(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, 2, 1.0)
        table.set_next_receive(1, 3, 2.0)
        table.set_next_send(1, 5.0)
        table.remove_child(1, 2)
        assert table.next_receive(1, 2) is None
        assert table.next_wakeup() == pytest.approx(2.0)
        table.remove_query(1)
        assert table.is_empty()

    def test_remove_missing_entries_is_silent_and_does_not_notify(self) -> None:
        table = TimingTable()
        calls = []
        table.subscribe(lambda: calls.append(1))
        table.remove_child(1, 2)
        table.remove_query(7)
        table.clear_next_send(3)
        assert calls == []

    def test_clear_next_send(self) -> None:
        table = TimingTable()
        table.set_next_send(1, 4.0)
        table.clear_next_send(1)
        assert table.next_send(1) is None
        assert table.is_empty()

    def test_entries_listing(self) -> None:
        table = TimingTable()
        table.set_next_receive(1, 2, 1.0)
        table.set_next_send(1, 2.0)
        entries = table.entries()
        assert (1, "receive", 2, 1.0) in entries
        assert (1, "send", None, 2.0) in entries


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),  # query id
            st.integers(min_value=0, max_value=6),  # child id
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            st.booleans(),  # receive vs send entry
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_next_wakeup_is_global_minimum(entries) -> None:
    table = TimingTable()
    expected: dict = {}
    for query_id, child, time, is_receive in entries:
        if is_receive:
            table.set_next_receive(query_id, child, time)
            expected[(query_id, "r", child)] = time
        else:
            table.set_next_send(query_id, time)
            expected[(query_id, "s", None)] = time
    assert table.next_wakeup() == pytest.approx(min(expected.values()))
