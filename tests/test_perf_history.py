"""Tests for the perf-history store, the regression gate, and the perf CLI.

Covers the ISSUE-6 history pillar and its acceptance criteria: the
append-only JSONL store (atomicity, corruption tolerance, resolve), the
statistical check flagging a synthetic ~1.3x slowdown against >= 3
fabricated samples (with the 2x-floor fallback below that), the
``layer_breakdown`` profile diff naming the layer that moved, the
trajectory figure, and the ``repro perf`` CLI surface end to end.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    PerfEntry,
    PerfHistory,
    atomic_write_text,
    entry_from_bench,
    host_fingerprint,
)
from repro.obs.report import check_regression, diff_breakdown, trajectory_figure

HOST = {"fingerprint": "deadbeef0001", "system": "Linux"}
OTHER_HOST = {"fingerprint": "cafecafe0002", "system": "Linux"}


def make_entry(
    commit: str,
    cells: dict,
    *,
    host: dict = HOST,
    breakdown: dict | None = None,
    higher_is_better: bool = True,
) -> PerfEntry:
    return PerfEntry(
        bench="hotpath" if higher_is_better else "orchestrator",
        commit=commit,
        host=dict(host),
        cells=dict(cells),
        higher_is_better=higher_is_better,
        layer_breakdown=breakdown,
        recorded_unix=0.0,
    )


@pytest.fixture()
def history(tmp_path: Path) -> PerfHistory:
    return PerfHistory(tmp_path / "perf_history.jsonl")


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path: Path) -> None:
        path = tmp_path / "file.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        # No temp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["file.json"]


class TestPerfHistory:
    def test_append_and_load_round_trip(self, history: PerfHistory) -> None:
        entry = make_entry("abc1234", {"kernel": 100.0}, breakdown={"engine": 0.5})
        history.append(entry)
        loaded = history.entries(bench="hotpath")
        assert len(loaded) == 1
        assert loaded[0] == entry

    def test_append_never_rewrites_existing_entries(self, history: PerfHistory) -> None:
        history.append(make_entry("aaa", {"kernel": 1.0}))
        first_line = history.path.read_text().splitlines()[0]
        history.append(make_entry("bbb", {"kernel": 2.0}))
        lines = history.path.read_text().splitlines()
        assert lines[0] == first_line
        assert len(lines) == 2

    def test_corrupt_and_foreign_schema_lines_are_skipped(self, history: PerfHistory) -> None:
        history.append(make_entry("aaa", {"kernel": 1.0}))
        with history.path.open("a", encoding="utf-8") as handle:
            handle.write("{truncated\n")
            foreign = {"schema": HISTORY_SCHEMA_VERSION + 1, "bench": "hotpath"}
            handle.write(json.dumps(foreign) + "\n")
        history.append(make_entry("bbb", {"kernel": 2.0}))
        assert [entry.commit for entry in history.entries()] == ["aaa", "bbb"]

    def test_resolve_by_negative_index_and_commit_prefix(self, history: PerfHistory) -> None:
        history.append(make_entry("abc1234", {"kernel": 1.0}))
        history.append(make_entry("def5678", {"kernel": 2.0}))
        assert history.resolve("-1").commit == "def5678"
        assert history.resolve("-2").commit == "abc1234"
        assert history.resolve("abc").cells["kernel"] == 1.0
        with pytest.raises(LookupError):
            history.resolve("nosuch")
        with pytest.raises(LookupError):
            history.resolve("-3")

    def test_fingerprint_filter(self, history: PerfHistory) -> None:
        history.append(make_entry("aaa", {"kernel": 1.0}, host=HOST))
        history.append(make_entry("bbb", {"kernel": 2.0}, host=OTHER_HOST))
        assert len(history.entries(fingerprint=HOST["fingerprint"])) == 1
        samples = history.cell_samples("kernel", bench="hotpath", fingerprint=HOST["fingerprint"])
        assert [value for _entry, value in samples] == [1.0]


class TestEntryFromBench:
    def test_hotpath_flattens_nested_cells(self) -> None:
        payload = {
            "kernel": {"events_per_sec": 1000.0},
            "paper_uniform": {
                "DTS-SS": {"events_per_sec": 50.0, "wall_seconds": 2.0},
                "parallel": {"events_per_sec": 80.0},
            },
            "layer_breakdown": {"fractions": {"engine": 0.4, "mac": 0.6}},
            "quick_mode": True,
        }
        entry = entry_from_bench("hotpath", payload, commit="abc")
        assert entry.cells == {
            "kernel": 1000.0,
            "paper_uniform/DTS-SS": 50.0,
            "paper_uniform/parallel": 80.0,
        }
        assert entry.layer_breakdown == {"engine": 0.4, "mac": 0.6}
        assert entry.higher_is_better
        assert entry.meta["quick_mode"] is True

    def test_orchestrator_is_lower_is_better(self) -> None:
        payload = {
            "serial_seconds": 10.0,
            "parallel_seconds": 4.0,
            "cold_store_seconds": 11.0,
            "warm_store_seconds": 1.0,
            "speedup": 2.5,
        }
        entry = entry_from_bench("orchestrator", payload, commit="abc")
        assert not entry.higher_is_better
        assert entry.unit == "seconds"
        assert entry.cells["parallel_seconds"] == 4.0

    def test_unknown_bench_raises(self) -> None:
        with pytest.raises(ValueError):
            entry_from_bench("nope", {})

    def test_host_fingerprint_is_stable(self) -> None:
        assert host_fingerprint()["fingerprint"] == host_fingerprint()["fingerprint"]
        assert len(host_fingerprint()["fingerprint"]) == 12


def fabricate_history(history: PerfHistory, values, cell: str = "kernel") -> None:
    """Append one same-host hotpath entry per value."""
    for index, value in enumerate(values):
        history.append(make_entry(f"c{index:07d}", {cell: value}))


class TestCheckRegression:
    def test_flags_1_3x_slowdown_against_three_samples(self, history: PerfHistory) -> None:
        # Acceptance criterion: a ~1.3x slowdown (current = mean / 1.3) must
        # be flagged once >= 3 samples with realistic (~2%) spread exist.
        fabricate_history(history, [1000.0, 985.0, 1015.0])
        report = check_regression(
            history,
            {"kernel": 1000.0 / 1.3},
            bench="hotpath",
            fingerprint=HOST["fingerprint"],
        )
        (finding,) = report.findings
        assert finding.method == "statistical"
        assert finding.regressed
        assert not report.ok

    def test_passes_on_comparable_measurement(self, history: PerfHistory) -> None:
        fabricate_history(history, [1000.0, 985.0, 1015.0])
        report = check_regression(
            history, {"kernel": 990.0}, bench="hotpath", fingerprint=HOST["fingerprint"]
        )
        assert report.ok
        assert report.findings[0].method == "statistical"

    def test_below_three_samples_falls_back_to_floor(self, history: PerfHistory) -> None:
        fabricate_history(history, [1000.0, 990.0])
        flagged = check_regression(
            history, {"kernel": 400.0}, bench="hotpath", fingerprint=HOST["fingerprint"]
        )
        assert flagged.findings[0].method == "floor"
        assert not flagged.ok  # below 0.5x mean
        passed = check_regression(
            history, {"kernel": 700.0}, bench="hotpath", fingerprint=HOST["fingerprint"]
        )
        assert passed.ok  # a 1.3x dip sails through the crude floor

    def test_no_history_reports_unchecked(self, history: PerfHistory) -> None:
        report = check_regression(history, {"kernel": 5.0}, bench="hotpath")
        assert report.ok
        assert report.findings[0].method == "no-history"

    def test_lower_is_better_direction(self, history: PerfHistory) -> None:
        for index, value in enumerate([10.0, 10.2, 9.8]):
            history.append(
                make_entry(f"c{index}", {"serial_seconds": value}, higher_is_better=False)
            )
        report = check_regression(
            history,
            {"serial_seconds": 13.0},  # 1.3x slower wall-clock
            bench="orchestrator",
            higher_is_better=False,
            fingerprint=HOST["fingerprint"],
        )
        assert not report.ok
        faster = check_regression(
            history,
            {"serial_seconds": 9.9},
            bench="orchestrator",
            higher_is_better=False,
            fingerprint=HOST["fingerprint"],
        )
        assert faster.ok

    def test_exclude_commit_keeps_sample_from_vouching_for_itself(
        self, history: PerfHistory
    ) -> None:
        # CI appends the fresh measurement before gating: with the slow
        # sample in its own baseline the mean drifts down and the std
        # inflates enough to mask the regression, so `check` must exclude
        # samples recorded at the commit under test.
        fabricate_history(history, [1000.0, 985.0, 1015.0])
        current = 1000.0 / 1.3
        history.append(make_entry("currentsha", {"kernel": current}))
        masked = check_regression(
            history, {"kernel": current}, bench="hotpath", fingerprint=HOST["fingerprint"]
        )
        assert masked.findings[0].samples == 4  # self-inclusion without the guard
        report = check_regression(
            history,
            {"kernel": current},
            bench="hotpath",
            fingerprint=HOST["fingerprint"],
            exclude_commit="currentsha",
        )
        assert report.findings[0].samples == 3
        assert not report.ok

    def test_cross_host_fallback_when_fingerprint_is_sparse(self, history: PerfHistory) -> None:
        fabricate_history(history, [1000.0, 985.0, 1015.0])
        report = check_regression(
            history,
            {"kernel": 500.0},
            bench="hotpath",
            fingerprint="unseen-host-fp",  # no samples for this host
        )
        # Falls back to the cross-host samples rather than skipping the cell.
        assert report.findings[0].samples == 3
        assert not report.ok


class TestDiffAndTrajectory:
    def test_diff_names_the_layer_that_moved(self, history: PerfHistory) -> None:
        a = make_entry(
            "aaa", {"kernel": 1000.0}, breakdown={"engine": 0.30, "mac": 0.30, "protocol": 0.40}
        )
        b = make_entry(
            "bbb", {"kernel": 700.0}, breakdown={"engine": 0.29, "mac": 0.48, "protocol": 0.23}
        )
        diff = diff_breakdown(a, b)
        assert diff["moved_layer"] == "mac"
        assert diff["moved_delta"] == pytest.approx(0.18)
        assert diff["cells"]["kernel"]["ratio"] == pytest.approx(0.7)

    def test_diff_without_breakdowns(self) -> None:
        diff = diff_breakdown(make_entry("a", {"kernel": 1.0}), make_entry("b", {"kernel": 2.0}))
        assert diff["moved_layer"] is None

    def test_trajectory_normalizes_to_first_sample(self, history: PerfHistory) -> None:
        fabricate_history(history, [1000.0, 1200.0, 1500.0])
        figure = trajectory_figure(history, bench="hotpath")
        (series,) = figure.series
        assert series.name == "kernel"
        assert series.x == [1.0, 2.0, 3.0]
        assert series.y == pytest.approx([1.0, 1.2, 1.5])
        assert figure.notes["kernel latest_vs_first"] == pytest.approx(1.5)
        assert "speedup" in figure.to_table()

    def test_trajectory_inverts_lower_is_better(self, history: PerfHistory) -> None:
        for index, value in enumerate([10.0, 5.0]):
            history.append(
                make_entry(f"c{index}", {"serial_seconds": value}, higher_is_better=False)
            )
        figure = trajectory_figure(history, bench="orchestrator")
        assert figure.series[0].y == pytest.approx([1.0, 2.0])  # halved time = 2x speedup

    def test_empty_history_raises(self, history: PerfHistory) -> None:
        with pytest.raises(LookupError):
            trajectory_figure(history)


class TestPerfCli:
    def _bench_file(self, tmp_path: Path, kernel: float) -> Path:
        payload = {
            "kernel": {"events_per_sec": kernel},
            "layer_breakdown": {"fractions": {"engine": 0.5, "mac": 0.5}},
        }
        path = tmp_path / "BENCH_hotpath.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def _perf(self, history_path: Path, *argv: str) -> tuple:
        out = io.StringIO()
        code = cli_main(["perf", "--history", str(history_path), *argv], out=out)
        return code, out.getvalue()

    def test_record_report_diff_check_end_to_end(self, tmp_path: Path) -> None:
        history_path = tmp_path / "history.jsonl"
        for index, kernel in enumerate([1000.0, 995.0, 1010.0]):
            bench = self._bench_file(tmp_path, kernel)
            code, text = self._perf(
                history_path, "record", "--from-json", str(bench), "--commit", f"c{index}"
            )
            assert code == 0
            assert "recorded hotpath entry" in text
        assert len(PerfHistory(history_path)) == 3

        code, text = self._perf(history_path, "report")
        assert code == 0
        assert "kernel" in text and "samples:" in text and "c2" in text

        code, text = self._perf(history_path, "diff", "-2", "-1")
        assert code == 0
        assert "moved most" in text and "kernel" in text

        # A fresh payload at historical speed passes the gate...
        good = self._bench_file(tmp_path, 1002.0)
        code, text = self._perf(
            history_path, "check", "--from-json", str(good), "--any-host"
        )
        assert code == 0
        assert "perf check passed" in text
        # ... and a ~1.3x slowdown fails it with a statistical finding.
        bad = self._bench_file(tmp_path, 1000.0 / 1.3)
        code, text = self._perf(
            history_path, "check", "--from-json", str(bad), "--any-host"
        )
        assert code == 1
        assert "REGRESSION" in text and "statistical" in text

    def test_check_on_missing_payload_exits_nonzero(self, tmp_path: Path) -> None:
        with pytest.raises(SystemExit):
            self._perf(tmp_path / "h.jsonl", "check", "--from-json", str(tmp_path / "missing.json"))

    def test_report_on_empty_history_fails_cleanly(self, tmp_path: Path) -> None:
        code, _text = self._perf(tmp_path / "empty.jsonl", "report")
        assert code == 2


class TestSeededHistory:
    def test_repo_history_has_day_one_trajectory(self) -> None:
        history = PerfHistory(Path(__file__).resolve().parent.parent / "perf_history.jsonl")
        hotpath = history.entries(bench="hotpath")
        orchestrator = history.entries(bench="orchestrator")
        assert hotpath and orchestrator  # seeded from the committed BENCH_*.json
        assert "kernel" in hotpath[0].cells
        assert hotpath[0].layer_breakdown  # diffable from day one
        assert "serial_seconds" in orchestrator[0].cells
