"""Integration tests for the query service over the simulated network."""

from __future__ import annotations

import pytest

from repro.core.protocol import EssatProtocolSuite
from repro.experiments.runner import install_failure_schedule
from repro.net.loss import ScriptedLoss
from repro.net.node import Network, build_network
from repro.net.packet import DataReportPacket
from repro.net.topology import FailureSchedule, Topology
from repro.query.aggregation import AggregationFunction
from repro.query.query import QuerySpec, SourceSelection
from repro.query.service import GreedySendPolicy, QueryService
from repro.radio.energy import IDEAL
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator


def build_query_network(
    topology: Topology,
    root: int | None = None,
    seed: int = 0,
    loss_model=None,
):
    """Wire a network, routing tree and per-node query services together."""
    sim = Simulator(seed=seed)
    network = build_network(sim, topology, power_profile=IDEAL, loss_model=loss_model)
    tree = build_routing_tree(topology, root=root)
    deliveries: list[tuple[int, int, float, float, int]] = []

    def on_root_delivery(query_id, k, report, completed_at):
        deliveries.append((query_id, k, report.value, completed_at, report.contributing_sources))

    services = {}
    for node_id in tree.nodes:
        services[node_id] = QueryService(
            sim,
            network.node(node_id),
            tree,
            policy=GreedySendPolicy(),
            on_root_delivery=on_root_delivery,
        )
    return sim, network, tree, services, deliveries


class TestSingleHop:
    def test_leaf_reports_reach_root(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        query = QuerySpec(query_id=1, period=1.0, start_time=0.5, duration=3.0)
        for service in services.values():
            service.register_query(query)
        sim.run(until=5.0)
        # Reports at t = 0.5, 1.5, 2.5, 3.5 (duration ends at 3.5).
        assert len(deliveries) == 4
        ks = [entry[1] for entry in deliveries]
        assert ks == [0, 1, 2, 3]

    def test_aggregate_value_is_average_of_leaf_ids(self) -> None:
        # Star: root 0 with leaves 1 and 2.
        topo = Topology.from_positions([(0, 0), (60, 0), (0, 60)], comm_range=80.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        query = QuerySpec(
            query_id=1, period=1.0, start_time=0.0, duration=1.5,
            aggregation=AggregationFunction.AVG,
        )
        for service in services.values():
            service.register_query(query)
        sim.run(until=4.0)
        assert deliveries
        # Default sample value is the node id, so AVG over leaves {1, 2} is 1.5.
        assert deliveries[0][2] == pytest.approx(1.5)
        assert deliveries[0][4] == 2  # contributing sources


class TestMultiHop:
    def test_chain_aggregation_counts_all_leaf_sources(self) -> None:
        topo = Topology.line(4, spacing=100.0, comm_range=120.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        # Only node 3 is a leaf in the chain; use ALL_NODES to exercise
        # interior sources as well.
        query = QuerySpec(
            query_id=1,
            period=1.0,
            start_time=0.0,
            duration=2.5,
            sources=SourceSelection.ALL_NODES,
            aggregation=AggregationFunction.COUNT,
        )
        for service in services.values():
            service.register_query(query)
        sim.run(until=6.0)
        assert deliveries
        # All four nodes contribute a sample each period.
        assert deliveries[0][2] == pytest.approx(4.0)

    def test_latency_increases_with_depth(self) -> None:
        shallow_topo = Topology.line(2, spacing=100.0, comm_range=120.0)
        deep_topo = Topology.line(5, spacing=100.0, comm_range=120.0)
        latencies = {}
        for name, topo in (("shallow", shallow_topo), ("deep", deep_topo)):
            sim, network, tree, services, deliveries = build_query_network(topo, root=0)
            query = QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=4.0)
            for service in services.values():
                service.register_query(query)
            sim.run(until=8.0)
            assert deliveries
            latencies[name] = max(done - query.report_time(k) for _, k, _, done, _ in deliveries)
        assert latencies["deep"] > latencies["shallow"]

    def test_multiple_queries_run_concurrently(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        q1 = QuerySpec(query_id=1, period=0.5, start_time=0.0, duration=2.0)
        q2 = QuerySpec(query_id=2, period=1.0, start_time=0.3, duration=2.0)
        for service in services.values():
            service.register_query(q1)
            service.register_query(q2)
        sim.run(until=5.0)
        by_query = {}
        for query_id, k, _value, _done, _sources in deliveries:
            by_query.setdefault(query_id, []).append(k)
        assert len(by_query[1]) == 5
        assert len(by_query[2]) == 3

    def test_duplicate_registration_rejected(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        query = QuerySpec(query_id=1, period=1.0)
        services[0].register_query(query)
        with pytest.raises(ValueError):
            services[0].register_query(query)


class TestTimeouts:
    def test_root_times_out_when_leaf_subtree_is_dead(self) -> None:
        # Star with two leaves; leaf 2's radio is off for the whole run, so
        # the root must time out and deliver partial aggregates from leaf 1.
        topo = Topology.from_positions([(0, 0), (60, 0), (0, 60)], comm_range=80.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        network.node(2).radio.sleep()
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=2.5)
        for service in services.values():
            service.register_query(query)
        sim.run(until=6.0)
        assert deliveries
        # Aggregates only contain leaf 1's sample.
        assert all(entry[4] == 1 for entry in deliveries)
        assert services[0].stats.timeouts >= 1

    def test_interior_node_timeout_forwards_partial_aggregate(self) -> None:
        # Chain 0 <- 1 <- 2 plus an extra leaf 3 under node 1.
        topo = Topology.from_positions(
            [(0, 0), (100, 0), (200, 0), (100, 80)], comm_range=120.0
        )
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        network.node(2).radio.sleep()  # kill one leaf
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=2.5)
        for service in services.values():
            service.register_query(query)
        sim.run(until=6.0)
        assert deliveries
        assert all(entry[4] == 1 for entry in deliveries)

    def test_no_contribution_periods_are_skipped(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        network.node(1).radio.sleep()  # the only source is dead
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=2.5)
        for service in services.values():
            service.register_query(query)
        sim.run(until=6.0)
        assert deliveries == []


class TestLossRecovery:
    def test_mac_retransmission_hides_single_packet_loss(self) -> None:
        dropped = []

        def drop_first_report(src, dst, packet):
            if isinstance(packet, DataReportPacket) and not dropped:
                dropped.append(packet.packet_id)
                return True
            return False

        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, network, tree, services, deliveries = build_query_network(
            topo, root=0, loss_model=ScriptedLoss(drop_first_report)
        )
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=2.5)
        for service in services.values():
            service.register_query(query)
        sim.run(until=6.0)
        assert len(deliveries) == 3
        assert dropped


class TestMaintenanceHooks:
    def test_remove_child_dependency_unblocks_collection(self) -> None:
        topo = Topology.from_positions([(0, 0), (60, 0), (0, 60)], comm_range=80.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        network.node(2).radio.sleep()
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=4.5)
        for service in services.values():
            service.register_query(query)
        # After 2 s, the root learns child 2 is dead and drops the dependency.
        sim.schedule_at(2.0, services[0].remove_child_dependency, 2)
        sim.run(until=8.0)
        # Later periods complete without waiting for the dead child, hence
        # without a timeout: their completion time is close to the period start.
        late = [entry for entry in deliveries if entry[1] >= 3]
        assert late
        for _query_id, k, _value, done, _sources in late:
            assert done - query.report_time(k) < 0.5

    def test_stop_query_halts_generation(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0)
        for service in services.values():
            service.register_query(query)
        sim.schedule_at(2.5, lambda: [s.stop_query(1) for s in services.values()])
        sim.run(until=10.0)
        assert 2 <= len(deliveries) <= 4

    def test_stats_counters(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim, network, tree, services, deliveries = build_query_network(topo, root=0)
        query = QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=2.5)
        for service in services.values():
            service.register_query(query)
        sim.run(until=5.0)
        assert services[2].stats.samples_generated == 3
        assert services[2].stats.reports_sent == 3
        assert services[1].stats.reports_received == 3
        assert services[0].stats.root_deliveries == 3


class TestChurnCompletionExactlyOnce:
    """Regression tests for the ``remove_child_dependency`` /
    ``_on_collection_timeout`` interaction under injected node failures.

    A failed node without coordinated repair (the PR 2 churn path with the
    baseline failure handler) is discovered by its parent through
    consecutive missing reports (Section 4.3).  The escalation fires *from
    inside* the collection-timeout handler, so removing the dependency can
    complete the very collection whose timeout is being processed: before
    the fix, the timeout handler then completed it a second time, delivering
    (or forwarding) the same period twice.
    """

    @staticmethod
    def _run_dts_star_with_failure():
        # Star: root 0, source leaves 1 and 2; node 2 fails at t=1.25 via the
        # scenario failure-injection path, with no EssatMaintenance repair.
        topo = Topology.from_positions([(0, 0), (60, 0), (0, 60)], comm_range=80.0)
        sim = Simulator(seed=3)
        network = build_network(sim, topo, power_profile=IDEAL)
        tree = build_routing_tree(topo, root=0)
        deliveries: list[tuple[int, int]] = []
        suite = EssatProtocolSuite(
            sim,
            network,
            tree,
            shaper="dts",
            on_root_delivery=lambda q, k, report, done: deliveries.append((q, k)),
        )
        schedule = FailureSchedule(explicit=((1.25, 2),))
        events = install_failure_schedule(sim, network, tree, schedule, suite=None)
        assert events == [(1.25, 2)]
        suite.register_query(QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=8.0))
        sim.run(until=12.0)
        return suite, deliveries

    def test_escalated_removal_completes_period_exactly_once(self) -> None:
        suite, deliveries = self._run_dts_star_with_failure()
        root = suite.nodes[0]
        # The escalation path must actually have run: the root declared the
        # silent child failed after repeated missing reports.
        assert root.shaper.stats.children_declared_failed == 1
        # Every period is delivered at the root exactly once -- the period
        # completed by the mid-timeout removal must not be forwarded again
        # by the remainder of the timeout handler.
        assert len(deliveries) == len(set(deliveries)), (
            "duplicate root deliveries: %r" % (sorted(deliveries),)
        )
        assert root.service.stats.root_deliveries == len(set(deliveries))

    def test_periods_after_removal_complete_without_timeouts(self) -> None:
        suite, deliveries = self._run_dts_star_with_failure()
        root = suite.nodes[0]
        # Once the dead child is removed, later collections complete as soon
        # as the surviving child reports: the timeout count stops growing at
        # the escalation threshold (3 consecutive misses).
        assert root.service.stats.timeouts == 3
        delivered_ks = sorted(k for _, k in set(deliveries))
        assert delivered_ks == list(range(len(delivered_ks))), delivered_ks

    def test_removal_cancels_empty_collection_immediately(self) -> None:
        # Chain 0 <- 1 <- 2: node 1 relays, node 2 is the only source.  When
        # node 2 dies, node 1's open collection holds nothing at all: the
        # removal must cancel it (and its timeout) immediately rather than
        # leaving the period to fire its timer.
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim = Simulator(seed=5)
        network = build_network(sim, topo, power_profile=IDEAL)
        tree = build_routing_tree(topo, root=0)
        deliveries: list[tuple[int, int]] = []
        suite = EssatProtocolSuite(
            sim,
            network,
            tree,
            shaper="dts",
            on_root_delivery=lambda q, k, report, done: deliveries.append((q, k)),
        )
        schedule = FailureSchedule(explicit=((1.25, 2),))
        install_failure_schedule(sim, network, tree, schedule, suite=None)
        suite.register_query(QuerySpec(query_id=1, period=1.0, start_time=0.0, duration=8.0))
        sim.run(until=12.0)
        relay = suite.nodes[1]
        assert relay.shaper.stats.children_declared_failed == 1
        # Exactly the three run-up misses time out; once the dead child is
        # removed, empty periods retire at period start with no timer armed.
        assert relay.service.stats.timeouts == 3
        assert relay.service.stats.reports_sent <= 2  # the pre-failure periods
        assert len(deliveries) == len(set(deliveries))


class TestPeriodWatermark:
    """The per-period bookkeeping stays O(in-flight), not O(run length).

    Periods complete (and submit) almost entirely in order, so a contiguous
    watermark absorbs them; only out-of-order marks sit in the sparse set
    until the watermark catches up.
    """

    @staticmethod
    def _watermark():
        from repro.query.service import _PeriodWatermark

        return _PeriodWatermark()

    def test_in_order_marks_collapse_into_the_watermark(self) -> None:
        marks = self._watermark()
        for k in range(100):
            marks.mark(k)
        assert marks.through == 99
        assert marks.sparse == set()
        assert 99 in marks
        assert 100 not in marks

    def test_out_of_order_mark_is_absorbed_when_the_gap_closes(self) -> None:
        marks = self._watermark()
        marks.mark(0)
        marks.mark(2)
        marks.mark(3)
        assert marks.through == 0
        assert marks.sparse == {2, 3}
        assert 2 in marks and 1 not in marks
        marks.mark(1)
        assert marks.through == 3
        assert marks.sparse == set()
        # Re-marking below the watermark is a no-op.
        marks.mark(2)
        assert marks.through == 3
        assert marks.sparse == set()
