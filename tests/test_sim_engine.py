"""Unit and property tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventPriority
from repro.sim.process import Timer


class TestScheduling:
    def test_clock_starts_at_zero(self, sim: Simulator) -> None:
        assert sim.now == 0.0

    def test_schedule_at_runs_callback_at_time(self, sim: Simulator) -> None:
        fired = []
        sim.schedule_at(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert sim.now == 1.5

    def test_schedule_in_is_relative(self, sim: Simulator) -> None:
        fired = []
        sim.schedule_at(2.0, lambda: sim.schedule_in(0.5, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.5]

    def test_schedule_in_past_raises(self, sim: Simulator) -> None:
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_raises(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.schedule_in(-0.1, lambda: None)

    def test_events_fire_in_time_order(self, sim: Simulator) -> None:
        order = []
        sim.schedule_at(3.0, lambda: order.append(3))
        sim.schedule_at(1.0, lambda: order.append(1))
        sim.schedule_at(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_events_fire_in_fifo_order(self, sim: Simulator) -> None:
        order = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self, sim: Simulator) -> None:
        order = []
        sim.schedule_at(1.0, lambda: order.append("normal"), priority=EventPriority.NORMAL)
        sim.schedule_at(1.0, lambda: order.append("high"), priority=EventPriority.HIGH)
        sim.schedule_at(1.0, lambda: order.append("low"), priority=EventPriority.LOW)
        sim.run()
        assert order == ["high", "normal", "low"]

    def test_cancel_prevents_firing(self, sim: Simulator) -> None:
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_stops_before_later_events(self, sim: Simulator) -> None:
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        end = sim.run(until=2.0)
        assert fired == [1]
        assert end == 2.0
        assert sim.pending_events == 1

    def test_run_until_executes_event_at_horizon(self, sim: Simulator) -> None:
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [2]

    def test_run_advances_clock_to_until_when_queue_drains(self, sim: Simulator) -> None:
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_stop_halts_run(self, sim: Simulator) -> None:
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_limits_run(self, sim: Simulator) -> None:
        fired = []
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_max_events_break_does_not_corrupt_clock(self, sim: Simulator) -> None:
        """Regression: `until` + `max_events` must not fast-forward past
        still-pending events (the next run() used to see events in the past)."""
        fired = []
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda i=i: fired.append(i))
        end = sim.run(until=20.0, max_events=3)
        assert end == 3.0
        assert sim.now == 3.0
        assert sim.pending_events == 7
        # Pre-fix this raised SimulationError("event queue corrupted: ...").
        end = sim.run(until=20.0)
        assert end == 20.0
        assert fired == list(range(10))

    def test_max_events_that_exactly_drains_queue_still_fast_forwards(
        self, sim: Simulator
    ) -> None:
        sim.schedule_at(1.0, lambda: None)
        assert sim.run(until=10.0, max_events=1) == 10.0

    def test_fast_forward_skips_cancelled_events_before_until(self, sim: Simulator) -> None:
        sim.schedule_at(1.0, lambda: None)
        late = sim.schedule_at(5.0, lambda: None)
        late.cancel()
        assert sim.run(until=10.0, max_events=1) == 10.0

    def test_pending_excludes_cancelled_queued_includes(self, sim: Simulator) -> None:
        sim.schedule_at(1.0, lambda: None)
        cancelled = sim.schedule_at(2.0, lambda: None)
        cancelled.cancel()
        assert sim.pending_events == 1
        assert sim.queued_events == 2

    def test_peek_next_time(self, sim: Simulator) -> None:
        assert sim.peek_next_time() is None
        handle = sim.schedule_at(4.0, lambda: None)
        sim.schedule_at(6.0, lambda: None)
        assert sim.peek_next_time() == 4.0
        handle.cancel()
        assert sim.peek_next_time() == 6.0

    def test_processed_events_counter(self, sim: Simulator) -> None:
        for i in range(4):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestPeriodic:
    def test_call_every_fires_at_period(self, sim: Simulator) -> None:
        times = []
        sim.call_every(1.0, lambda: times.append(sim.now), start=1.0)
        sim.run(until=5.0)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_call_every_with_count(self, sim: Simulator) -> None:
        times = []
        sim.call_every(0.5, lambda: times.append(sim.now), start=0.5, count=3)
        sim.run(until=10.0)
        assert times == [0.5, 1.0, 1.5]

    def test_call_every_cancel(self, sim: Simulator) -> None:
        times = []
        handle = sim.call_every(1.0, lambda: times.append(sim.now), start=1.0)
        sim.schedule_at(2.5, handle.cancel)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert handle.cancelled

    def test_call_every_rejects_nonpositive_period(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)


class TestTimer:
    def test_timer_fires_once(self, sim: Simulator) -> None:
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_in(2.0)
        sim.run()
        assert fired == [2.0]
        assert not timer.pending

    def test_timer_restart_replaces_pending(self, sim: Simulator) -> None:
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_in(2.0)
        timer.start_in(5.0)
        sim.run()
        assert fired == [5.0]

    def test_timer_cancel(self, sim: Simulator) -> None:
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_in(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_timer_expiry_property(self, sim: Simulator) -> None:
        timer = Timer(sim, lambda: None)
        assert timer.expiry is None
        timer.start_at(3.0)
        assert timer.expiry == 3.0

    def test_timer_fired_count(self, sim: Simulator) -> None:
        timer = Timer(sim, lambda: None)
        timer.start_in(1.0)
        sim.run()
        timer.start_in(1.0)
        sim.run()
        assert timer.fired_count == 2


class TestDeterminism:
    def test_same_seed_same_draws(self) -> None:
        sim_a = Simulator(seed=123)
        sim_b = Simulator(seed=123)
        draws_a = [sim_a.streams.get("mac.backoff.1").random() for _ in range(20)]
        draws_b = [sim_b.streams.get("mac.backoff.1").random() for _ in range(20)]
        assert draws_a == draws_b

    def test_different_streams_are_independent(self) -> None:
        sim = Simulator(seed=5)
        first = sim.streams.get("a").random()
        # Interleaving draws from stream "b" must not change stream "a".
        sim2 = Simulator(seed=5)
        sim2.streams.get("b").random()
        second = sim2.streams.get("a").random()
        assert first == second


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=60))
def test_property_events_always_fire_in_nondecreasing_time_order(times: list[float]) -> None:
    """Events scheduled in any order fire with a non-decreasing clock."""
    sim = Simulator(seed=0)
    observed: list[float] = []
    for t in times:
        sim.schedule_at(t, lambda t=t: observed.append(sim.now))
    sim.run()
    assert len(observed) == len(times)
    assert observed == sorted(observed)
    assert sorted(observed) == sorted(times)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_events_never_fire(entries: list[tuple[float, bool]]) -> None:
    """Cancelled events never execute; the rest all execute exactly once."""
    sim = Simulator(seed=0)
    fired: list[int] = []
    expected = 0
    for index, (time, cancel) in enumerate(entries):
        handle = sim.schedule_at(time, lambda index=index: fired.append(index))
        if cancel:
            handle.cancel()
        else:
            expected += 1
    sim.run()
    assert len(fired) == expected
    assert len(set(fired)) == len(fired)


class TestReschedule:
    def test_rescheduled_event_fires_with_fresh_ordering(self) -> None:
        from repro.sim.engine import Simulator

        sim = Simulator()
        fired: list = []
        handle = sim.schedule_in(0.0, lambda: fired.append(sim.now))
        sim.run(until=0.0)
        assert fired == [0.0]
        # Re-arm the same (already fired) event object instead of allocating
        # a new one; it must fire again at the new time.
        sim.schedule_at(1.0, lambda: fired.append("other"))
        sim.reschedule(handle, 2.0)
        sim.run(until=3.0)
        assert fired == [0.0, "other", 2.0]

    def test_reschedule_rejects_queued_event(self) -> None:
        import pytest

        from repro.sim.engine import SimulationError, Simulator

        sim = Simulator()
        handle = sim.schedule_in(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 2.0)
