"""The declarative spec codec: round trips, version gating, wrapper compat."""

import json

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.metrics import RunMetrics
from repro.experiments.scenarios import rate_sweep_workload
from repro.net.mobility import MobilitySpec
from repro.net.topology import FailureSchedule
from repro.orchestrator import codec
from repro.orchestrator.codec import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    CodecError,
    atom,
    codec_for,
    decode,
    encode,
    nested,
    registered_types,
)
from repro.orchestrator.jobs import (
    RunJob,
    metrics_from_dict,
    metrics_to_dict,
    scenario_from_dict,
    scenario_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.query.query import QuerySpec, SourceSelection


def _sample_metrics() -> RunMetrics:
    return RunMetrics(
        protocol="DTS-SS",
        duration=12.0,
        average_duty_cycle=0.031,
        duty_cycle_per_node={0: 0.02, 3: 0.04},
        duty_cycle_by_rank={0: 0.02, 1: 0.04},
        average_query_latency=0.19,
        max_query_latency=0.6,
        deliveries=41,
        delivery_ratio=0.97,
        energy_per_node={0: 1.5, 3: 2.25},
        sleep_intervals=[0.01, 0.25, 0.031],
        channel_stats={"collisions": 4},
        counters={"engine.events_processed": 1234.0},
    )


def _sample_instances():
    """One representative instance per registered type."""
    scenario = smoke_scale().with_overrides(
        failure_schedule=FailureSchedule(
            fraction=0.1, window=(3.0, 9.0), explicit=((4.5, 7),)
        ),
        mobility=MobilitySpec(kind="waypoint", params=(("speed", 1.5),)),
    )
    workload = rate_sweep_workload(2.0)
    instances = {
        type(scenario.power_profile): scenario.power_profile,
        type(scenario.mac_config): scenario.mac_config,
        type(scenario.topology): scenario.topology,
        type(scenario.propagation): scenario.propagation,
        type(scenario.loss): scenario.loss,
        MobilitySpec: scenario.mobility,
        FailureSchedule: scenario.failure_schedule,
        type(scenario): scenario,
        type(workload): workload,
        QuerySpec: QuerySpec(
            query_id=7,
            period=0.5,
            start_time=1.25,
            sources=frozenset({2, 5}),
            deadline=0.4,
            duration=8.0,
        ),
        RunMetrics: _sample_metrics(),
        RunJob: RunJob(
            scenario=scenario, protocol="DTS-SS", seed=42, workload=workload
        ),
    }
    return instances


class TestRoundTrips:
    def test_every_registered_type_round_trips_through_json(self) -> None:
        instances = _sample_instances()
        missing = [t.__name__ for t in registered_types() if t not in instances]
        assert not missing, f"no sample instance for registered type(s) {missing}"
        for cls, instance in instances.items():
            wire = json.loads(json.dumps(encode(instance)))
            rebuilt = decode(cls, wire)
            assert rebuilt == instance, cls.__name__

    def test_fixed_query_job_round_trips(self) -> None:
        job = RunJob(
            scenario=smoke_scale(),
            protocol="PSM",
            seed=3,
            queries=(
                QuerySpec(query_id=1, period=0.5, sources=SourceSelection.ALL_NODES),
            ),
        )
        assert decode(RunJob, json.loads(json.dumps(encode(job)))) == job

    def test_encode_requires_registration(self) -> None:
        class Unregistered:
            pass

        with pytest.raises(CodecError, match="no codec registered"):
            encode(Unregistered())


class TestVersionGating:
    def test_supported_versions_cover_current(self) -> None:
        assert SCHEMA_VERSION == 5
        assert SCHEMA_VERSION in SUPPORTED_VERSIONS
        assert set(SUPPORTED_VERSIONS) == {3, 4, 5}

    def test_v3_metrics_without_counters_decode_to_empty(self) -> None:
        data = metrics_to_dict(_sample_metrics())
        del data["counters"]
        rebuilt = metrics_from_dict(data, version=3)
        assert rebuilt.counters == {}
        assert rebuilt.average_duty_cycle == pytest.approx(0.031)

    def test_missing_field_without_default_raises(self) -> None:
        data = metrics_to_dict(_sample_metrics())
        del data["protocol"]
        with pytest.raises(CodecError, match="protocol"):
            metrics_from_dict(data)

    def test_nested_decode_threads_record_version(self) -> None:
        # A synthetic pair of types: the inner one gained a field at v4, the
        # outer one nests it.  Decoding the outer at v3 must thread v3 down.
        class Inner:
            def __init__(self, value, extra="default"):
                self.value = value
                self.extra = extra

        class Outer:
            def __init__(self, inner):
                self.inner = inner

        codec.register(Inner, atom("value"), atom("extra", since=4, default="fallback"))
        codec.register(Outer, nested("inner", Inner))
        try:
            wire = {"inner": {"value": 1, "extra": "written-at-v4"}}
            assert decode(Outer, wire, version=4).inner.extra == "written-at-v4"
            assert decode(Outer, wire, version=3).inner.extra == "fallback"
        finally:
            codec._REGISTRY.pop(Inner, None)
            codec._REGISTRY.pop(Outer, None)

    def test_run_job_from_dict_honours_embedded_version(self) -> None:
        job = RunJob(
            scenario=smoke_scale(), protocol="DTS-SS", seed=9,
            workload=rate_sweep_workload(1.0),
        )
        payload = job.to_dict()
        assert payload["version"] == SCHEMA_VERSION
        v3 = dict(payload)
        v3["version"] = 3
        assert RunJob.from_dict(v3) == job


class TestWrapperCompat:
    """The retired hand-written helpers survive as shims over the codec."""

    def test_scenario_wrappers_match_codec(self) -> None:
        scenario = smoke_scale()
        assert scenario_to_dict(scenario) == encode(scenario)
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_workload_wrappers_match_codec(self) -> None:
        workload = rate_sweep_workload(5.0)
        assert workload_to_dict(workload) == encode(workload)
        assert workload_from_dict(workload_to_dict(workload)) == workload

    def test_subclass_resolves_through_mro(self) -> None:
        assert codec_for(MobilitySpec).cls is MobilitySpec

    def test_digest_is_stable_and_content_sensitive(self) -> None:
        scenario = smoke_scale()
        workload = rate_sweep_workload(2.0)
        job = RunJob(scenario=scenario, protocol="DTS-SS", seed=1, workload=workload)
        twin = RunJob(scenario=scenario, protocol="DTS-SS", seed=1, workload=workload)
        other = RunJob(scenario=scenario, protocol="PSM", seed=1, workload=workload)
        assert job.digest == twin.digest
        assert job.digest != other.digest
