"""Tests for the wireless channel: delivery, collisions, sleep misses, loss models."""

from __future__ import annotations

import pytest

from repro.net.channel import WirelessChannel
from repro.net.loss import NoLoss, PerLinkLoss, ScriptedLoss, UniformLoss
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.radio.energy import IDEAL
from repro.radio.radio import Radio
from repro.radio.states import RadioState
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _build_channel(topology: Topology, seed: int = 0):
    """Build a channel with one radio per node and record deliveries per node."""
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim, topology)
    radios = {}
    inboxes = {node: [] for node in topology.node_ids}

    for node_id in topology.node_ids:
        radio = Radio(sim, node_id, IDEAL)
        radios[node_id] = radio
        channel.register(
            node_id,
            radio,
            lambda packet, start, node=node_id: inboxes[node].append(packet),
        )
    return sim, channel, radios, inboxes


class TestDelivery:
    def test_unicast_delivered_to_all_awake_neighbors(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        packet = Packet(src=1, dst=2, size_bytes=52)
        sim.schedule_at(0.0, channel.transmit, 1, packet, 0.001)
        sim.run()
        # Both neighbours of node 1 hear the frame; addressing is the MAC's job.
        assert len(inboxes[0]) == 1
        assert len(inboxes[2]) == 1
        assert inboxes[1] == []
        assert channel.stats.deliveries == 2

    def test_out_of_range_node_does_not_receive(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=2), 0.001)
        sim.run()
        assert inboxes[2] == []
        assert len(inboxes[1]) == 1

    def test_sleeping_receiver_misses_frame(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        radios[1].sleep()
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.001)
        sim.run()
        assert inboxes[1] == []
        assert channel.stats.missed_asleep == 1

    def test_receiver_radio_goes_through_rx_state(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.01)
        sim.run(until=0.005)
        assert radios[1].state is RadioState.RX
        sim.run(until=0.02)
        assert radios[1].state is RadioState.IDLE
        radios[1].finalize()
        assert radios[1].tracker.time_in_state(RadioState.RX) == pytest.approx(0.01)

    def test_transmitter_cannot_receive_its_own_frame(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.001)
        sim.run()
        assert inboxes[0] == []

    def test_transmit_from_unregistered_node_is_discarded(self) -> None:
        # A node that failed (was unregistered) cannot put energy on the air;
        # its transmissions vanish instead of crashing the simulation.
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        assert channel.transmit(99, Packet(src=99, dst=0), 0.001) is None
        assert channel.stats.dropped_from_failed_sender == 1
        sim.run()
        assert inboxes[0] == []

    def test_failed_node_mid_operation_does_not_crash_senders(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        channel.unregister(0)
        # Node 0 (now failed) still tries to transmit; nothing happens.
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.001)
        sim.run()
        assert inboxes[1] == []

    def test_nonpositive_duration_raises(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        with pytest.raises(ValueError):
            channel.transmit(0, Packet(src=0, dst=1), 0.0)

    def test_unregistered_receiver_is_skipped(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        channel.unregister(1)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.001)
        sim.run()
        assert inboxes[1] == []


class TestCollisions:
    def test_overlapping_transmissions_collide_at_common_receiver(self) -> None:
        # 0 and 2 are both in range of 1 but not of each other (hidden terminals).
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.002)
        sim.schedule_at(0.001, channel.transmit, 2, Packet(src=2, dst=1), 0.002)
        sim.run()
        assert inboxes[1] == []
        assert channel.stats.collisions >= 1

    def test_non_overlapping_transmissions_both_delivered(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.001)
        sim.schedule_at(0.005, channel.transmit, 2, Packet(src=2, dst=1), 0.001)
        sim.run()
        assert len(inboxes[1]) == 2
        assert channel.stats.collisions == 0


class TestCollisionWindow:
    """Regression tests for the collision-window bugfix.

    Pre-fix, a receiver locked onto a corrupted frame was unlocked and
    ``end_rx()``-ed as soon as the *first* overlapping frame ended, even
    though the second frame was still on the air -- so the node could lock
    onto a third frame mid-collision and its radio under-counted receive
    time.
    """

    @staticmethod
    def _star():
        # Receiver 0 at the centre; senders 1, 2, 3 all in range of 0 but
        # pairwise out of range (hidden terminals).
        topo = Topology.from_positions(
            [(0.0, 0.0), (100.0, 0.0), (-100.0, 0.0), (0.0, 100.0)],
            comm_range=120.0,
        )
        return _build_channel(topo)

    def test_receiver_stays_locked_until_all_overlapping_frames_end(self) -> None:
        sim, channel, radios, inboxes = self._star()
        sim.schedule_at(0.000, channel.transmit, 1, Packet(src=1, dst=0), 0.010)  # A
        sim.schedule_at(0.002, channel.transmit, 2, Packet(src=2, dst=0), 0.010)  # B
        # A ends at 0.010 while B is still on the air until 0.012; the
        # receiver's radio must stay in RX for the whole collision.
        sim.run(until=0.011)
        assert radios[0].state is RadioState.RX
        sim.run(until=0.013)
        assert radios[0].state is RadioState.IDLE
        assert inboxes[0] == []
        radios[0].finalize()
        # Pre-fix: RX ended with frame A at 0.010.
        assert radios[0].tracker.time_in_state(RadioState.RX) == pytest.approx(0.012)

    def test_receiver_cannot_lock_a_third_frame_mid_collision(self) -> None:
        sim, channel, radios, inboxes = self._star()
        sim.schedule_at(0.000, channel.transmit, 1, Packet(src=1, dst=0), 0.010)  # A
        sim.schedule_at(0.002, channel.transmit, 2, Packet(src=2, dst=0), 0.010)  # B
        # C starts after A ended but while B is still in the air.  Pre-fix
        # the receiver had (wrongly) gone idle at A's end and locked onto C
        # intact, delivering a frame born into a collision.
        sim.schedule_at(0.011, channel.transmit, 3, Packet(src=3, dst=0), 0.010)  # C
        sim.run()
        assert inboxes[0] == []
        radios[0].finalize()
        # Busy from first lock (0.000) until the frames overlapping the
        # corrupted reception cleared the air (B's end, 0.012); C, which
        # started mid-drain, is an ordinary busy-radio miss and does not
        # extend the lock (no cascading RX livelock).
        assert radios[0].tracker.time_in_state(RadioState.RX) == pytest.approx(0.012)


class TestUnregisterAccounting:
    """Regression tests for the failure-injection accounting bugfix.

    Pre-fix, ``unregister`` dropped the dead node from ``_locked`` but left
    it in other transmissions' ``receivers`` maps and never closed out its
    radio RX state, so churn runs leaked phantom receiver entries and kept
    charging RX energy to a dead radio.
    """

    def test_unregister_mid_reception_closes_rx_accounting(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        transmission = {}

        def start_tx():
            transmission["tx"] = channel.transmit(0, Packet(src=0, dst=1), 0.010)

        sim.schedule_at(0.0, start_tx)
        sim.schedule_at(0.005, channel.unregister, 1)
        sim.run(until=0.005)
        # The dead node's reception ends at the failure instant...
        assert radios[1].state is RadioState.IDLE
        # ...and it is scrubbed from the in-flight frame's receiver map.
        assert 1 not in transmission["tx"].receivers
        sim.run()
        assert inboxes[1] == []
        radios[1].finalize()
        # Pre-fix the radio sat in RX from 0.0 until the end of the run.
        assert radios[1].tracker.time_in_state(RadioState.RX) == pytest.approx(0.005)

    def test_failure_injection_path_closes_rx_accounting(self) -> None:
        # Same bug exercised through the PR 2 failure-injection machinery:
        # a scheduled FailureSchedule failure routed through
        # Network.fail_node while the victim is mid-reception.
        from repro.mac.base import MacConfig
        from repro.net.node import build_network
        from repro.net.topology import FailureSchedule
        from repro.sim.rng import RandomStreams

        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim = Simulator(seed=0)
        network = build_network(sim, topo, power_profile=IDEAL, mac_config=MacConfig())
        victim = 1
        schedule = FailureSchedule(explicit=((0.005, victim),))
        events = schedule.materialize([victim], RandomStreams(0).get("scenario.failures"))
        for time, node_id in events:
            sim.schedule_at(time, network.fail_node, node_id)
        # Put a frame on the air directly so the victim is locked when the
        # scheduled failure fires.
        sim.schedule_at(0.0, network.channel.transmit, 0, Packet(src=0, dst=1), 0.010)
        sim.run(until=1.0)
        network.finalize()
        assert network.nodes[victim].failed
        victim_radio = network.nodes[victim].radio
        # Pre-fix: the dead radio stayed in RX until the end of the run and
        # its tracker charged a full second of receive energy.
        assert victim_radio.tracker.time_in_state(RadioState.RX) == pytest.approx(0.005)

    def test_unregister_mid_transmission_closes_tx_accounting(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.010)
        sim.schedule_at(0.005, channel.unregister, 0)
        sim.run(until=1.0)
        # The dead sender's TX accounting ends at the failure instant
        # instead of charging full TX power for the rest of the run.
        assert radios[0].state is not RadioState.TX
        radios[0].finalize()
        assert radios[0].tracker.time_in_state(RadioState.TX) == pytest.approx(0.005)

    def test_dead_senders_half_transmitted_frame_is_not_delivered(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.010)
        sim.schedule_at(0.005, channel.unregister, 0)
        sim.run()
        # A truncated frame cannot be decoded: the receiver unlocks at the
        # frame's scheduled end but receives nothing.
        assert inboxes[1] == []
        assert radios[1].state is RadioState.IDLE
        assert channel.stats.deliveries == 0

    def test_unregister_scrubs_phantom_receivers_from_all_transmissions(self) -> None:
        # Receiver in range of two hidden senders: both in-flight frames
        # must drop the dead node from their receiver maps.
        topo = Topology.from_positions(
            [(0.0, 0.0), (100.0, 0.0), (-100.0, 0.0)], comm_range=120.0
        )
        sim, channel, radios, inboxes = _build_channel(topo)
        frames = {}

        def start(sender, key, duration):
            frames[key] = channel.transmit(sender, Packet(src=sender, dst=0), duration)

        sim.schedule_at(0.000, start, 1, "a", 0.010)
        sim.schedule_at(0.002, start, 2, "b", 0.010)
        sim.schedule_at(0.004, channel.unregister, 0)
        sim.run()
        assert 0 not in frames["a"].receivers
        assert 0 not in frames["b"].receivers


class TestCarrierSense:
    def test_is_busy_when_neighbor_transmits(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        assert not channel.is_busy(1)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.01)
        sim.run(until=0.005)
        assert channel.is_busy(1)
        assert channel.is_busy(0)
        # Node 2 is out of range of node 0 and senses an idle medium.
        assert not channel.is_busy(2)
        sim.run(until=0.02)
        assert not channel.is_busy(1)

    def test_time_until_idle(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.01)
        sim.run(until=0.004)
        assert channel.time_until_idle(1) == pytest.approx(0.006)
        assert channel.time_until_idle(0) == pytest.approx(0.006)


class TestLossModels:
    def test_no_loss_never_drops(self) -> None:
        model = NoLoss()
        assert not model.should_drop(0, 1, Packet(src=0, dst=1))

    def test_uniform_loss_probability_bounds(self) -> None:
        with pytest.raises(ValueError):
            UniformLoss(1.5)
        always = UniformLoss(1.0, streams=RandomStreams(0))
        assert always.should_drop(0, 1, Packet(src=0, dst=1))
        never = UniformLoss(0.0, streams=RandomStreams(0))
        assert not never.should_drop(0, 1, Packet(src=0, dst=1))

    def test_per_link_loss(self) -> None:
        model = PerLinkLoss({(0, 1): 1.0}, default=0.0, streams=RandomStreams(0))
        assert model.should_drop(0, 1, Packet(src=0, dst=1))
        assert not model.should_drop(1, 0, Packet(src=1, dst=0))

    def test_per_link_loss_validation(self) -> None:
        with pytest.raises(ValueError):
            PerLinkLoss({(0, 1): 2.0})
        with pytest.raises(ValueError):
            PerLinkLoss({}, default=-0.1)

    def test_scripted_loss_drops_selected_frames(self) -> None:
        model = ScriptedLoss(lambda src, dst, packet: packet.packet_id % 2 == 0)
        even = Packet(src=0, dst=1)
        odd = Packet(src=0, dst=1)
        results = {packet.packet_id % 2: model.should_drop(0, 1, packet) for packet in (even, odd)}
        assert results[0] is True
        assert results[1] is False

    def test_channel_applies_loss_model(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim = Simulator(seed=0)
        channel = WirelessChannel(sim, topo, loss_model=UniformLoss(1.0, streams=RandomStreams(0)))
        inbox = []
        radio0 = Radio(sim, 0, IDEAL)
        radio1 = Radio(sim, 1, IDEAL)
        channel.register(0, radio0, lambda p, t: None)
        channel.register(1, radio1, lambda p, t: inbox.append(p))
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1), 0.001)
        sim.run()
        assert inbox == []
        assert channel.stats.dropped_by_loss_model == 1

    def test_stats_as_dict(self) -> None:
        topo = Topology.line(2, spacing=50.0, comm_range=100.0)
        sim, channel, radios, inboxes = _build_channel(topo)
        sim.schedule_at(0.0, channel.transmit, 0, Packet(src=0, dst=1, size_bytes=52), 0.001)
        sim.run()
        stats = channel.stats.as_dict()
        assert stats["transmissions"] == 1
        assert stats["bytes_transmitted"] == 52
