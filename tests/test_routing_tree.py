"""Tests for routing-tree construction, rank/level computation and repair."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import Topology
from repro.routing.maintenance import TreeMaintenance
from repro.routing.tree import RoutingError, RoutingTree, build_routing_tree


def chain_tree(length: int) -> RoutingTree:
    """A simple chain 0 <- 1 <- 2 <- ... (root 0)."""
    return RoutingTree(root=0, parent={i: i - 1 for i in range(1, length)})


class TestRoutingTreeStructure:
    def test_chain_levels_and_ranks(self) -> None:
        tree = chain_tree(4)
        assert [tree.level(i) for i in range(4)] == [0, 1, 2, 3]
        assert [tree.rank(i) for i in range(4)] == [3, 2, 1, 0]
        assert tree.max_rank == 3
        assert tree.depth == 3

    def test_leaf_rank_is_zero(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 0, 3: 1})
        assert tree.rank(2) == 0
        assert tree.rank(3) == 0
        assert tree.is_leaf(3)
        assert not tree.is_leaf(1)

    def test_rank_is_subtree_height_not_level(self) -> None:
        # Node 1 has a deep subtree; node 2 is a direct leaf of the root.
        tree = RoutingTree(root=0, parent={1: 0, 2: 0, 3: 1, 4: 3})
        assert tree.rank(0) == 3
        assert tree.rank(1) == 2
        assert tree.rank(2) == 0
        assert tree.level(2) == 1

    def test_children_are_sorted(self) -> None:
        tree = RoutingTree(root=0, parent={3: 0, 1: 0, 2: 0})
        assert tree.children(0) == [1, 2, 3]

    def test_leaves_and_interior(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 1})
        assert tree.leaves == [2, 3]
        assert tree.interior_nodes == [0, 1]

    def test_parent_of_root_is_none(self) -> None:
        tree = chain_tree(3)
        assert tree.parent_of(0) is None
        assert tree.parent_of(2) == 1

    def test_subtree(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 1, 4: 0})
        assert tree.subtree(1) == frozenset({1, 2, 3})
        assert tree.subtree(0) == frozenset({0, 1, 2, 3, 4})

    def test_subtree_contains_any(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 0})
        assert tree.subtree_contains_any(1, {2})
        assert not tree.subtree_contains_any(3, {2})
        assert not tree.subtree_contains_any(1, set())

    def test_path_to_root(self) -> None:
        tree = chain_tree(4)
        assert tree.path_to_root(3) == [3, 2, 1, 0]
        assert tree.path_to_root(0) == [0]

    def test_nodes_by_rank(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 0})
        grouped = tree.nodes_by_rank()
        assert grouped[0] == [2, 3]
        assert grouped[1] == [1]
        assert grouped[2] == [0]

    def test_contains_and_len(self) -> None:
        tree = chain_tree(3)
        assert 2 in tree
        assert 9 not in tree
        assert len(tree) == 3

    def test_unknown_node_raises(self) -> None:
        tree = chain_tree(3)
        with pytest.raises(RoutingError):
            tree.level(99)

    def test_unreachable_node_rejected(self) -> None:
        with pytest.raises(RoutingError):
            RoutingTree(root=0, parent={2: 3, 3: 2})

    def test_root_with_parent_rejected(self) -> None:
        with pytest.raises(RoutingError):
            RoutingTree(root=0, parent={0: 1, 1: 0})


class TestRoutingTreeMutation:
    def test_reparent_updates_levels_and_ranks(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 2})
        tree.reparent(3, 0)
        assert tree.level(3) == 1
        assert tree.rank(1) == 1
        assert tree.rank(0) == 2

    def test_reparent_cycle_rejected(self) -> None:
        tree = chain_tree(4)
        with pytest.raises(RoutingError):
            tree.reparent(1, 3)

    def test_reparent_root_rejected(self) -> None:
        tree = chain_tree(3)
        with pytest.raises(RoutingError):
            tree.reparent(0, 2)

    def test_remove_subtree(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 1, 4: 0})
        removed = tree.remove_subtree(1)
        assert removed == frozenset({1, 2, 3})
        assert tree.nodes == [0, 4]

    def test_remove_node_detaches_orphans(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 2})
        orphans = tree.remove_node(1)
        assert orphans == [2]
        assert tree.nodes == [0]

    def test_attach_subtree_restores_structure(self) -> None:
        tree = RoutingTree(root=0, parent={1: 0, 2: 1, 3: 2})
        tree.remove_node(1)
        tree.attach_subtree(2, 0, internal_edges={3: 2})
        assert tree.parent_of(2) == 0
        assert tree.parent_of(3) == 2
        assert tree.rank(0) == 2

    def test_attach_existing_node_rejected(self) -> None:
        tree = chain_tree(3)
        with pytest.raises(RoutingError):
            tree.attach_subtree(2, 0, internal_edges={})


class TestBuildRoutingTree:
    def test_line_topology_builds_chain(self) -> None:
        topo = Topology.line(5, spacing=100.0, comm_range=120.0)
        tree = build_routing_tree(topo, root=0)
        assert tree.parent_of(1) == 0
        assert tree.parent_of(4) == 3
        assert tree.max_rank == 4

    def test_default_root_is_center_node(self) -> None:
        topo = Topology.from_positions(
            [(0, 0), (250, 250), (499, 0)], comm_range=600.0, area=(500.0, 500.0)
        )
        tree = build_routing_tree(topo)
        assert tree.root == 1

    def test_levels_are_shortest_hop_distances(self) -> None:
        topo = Topology.random(40, area=(400.0, 400.0), comm_range=150.0, seed=8)
        root = topo.center_node()
        tree = build_routing_tree(topo, root=root)
        import networkx as nx

        graph = topo.to_graph()
        lengths = nx.single_source_shortest_path_length(graph, root)
        for node in tree.nodes:
            assert tree.level(node) == lengths[node]

    def test_max_distance_filter(self) -> None:
        topo = Topology.from_positions(
            [(0, 0), (100, 0), (200, 0), (600, 0)], comm_range=450.0
        )
        tree = build_routing_tree(topo, root=0, max_distance_from_root=300.0)
        assert 3 not in tree
        assert set(tree.nodes) == {0, 1, 2}

    def test_unknown_root_rejected(self) -> None:
        topo = Topology.line(3, spacing=50.0)
        with pytest.raises(RoutingError):
            build_routing_tree(topo, root=42)

    def test_disconnected_nodes_left_out(self) -> None:
        topo = Topology.from_positions([(0, 0), (50, 0), (5000, 0)], comm_range=100.0)
        tree = build_routing_tree(topo, root=0)
        assert set(tree.nodes) == {0, 1}


class TestTreeMaintenance:
    def test_failure_reattaches_orphan_to_surviving_neighbor(self) -> None:
        # Chain 0 - 1 - 2 - 3 - 4 plus node 5 linked to both 0 and 2.
        topo = Topology.from_positions(
            [(0, 0), (100, 0), (200, 0), (300, 0), (400, 0), (100, 60)], comm_range=125.0
        )
        tree = build_routing_tree(topo, root=0)
        assert tree.parent_of(2) == 1
        maintenance = TreeMaintenance(tree, topo)
        result = maintenance.handle_node_failure(1)
        assert result.failed_node == 1
        assert result.reattached == {2: 5}
        assert 1 not in tree
        assert tree.parent_of(2) == 5

    def test_failure_with_no_alternative_disconnects(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        tree = build_routing_tree(topo, root=0)
        maintenance = TreeMaintenance(tree, topo)
        result = maintenance.handle_node_failure(1)
        assert result.disconnected == [2]
        assert set(tree.nodes) == {0}

    def test_failure_preserves_orphan_subtree_structure(self) -> None:
        # 0 at the centre, chain 0-1-2-3-4, and node 5 linking 0 and 2.
        topo = Topology.from_positions(
            [(0, 0), (100, 0), (200, 0), (300, 0), (400, 0), (100, 60)], comm_range=125.0
        )
        tree = build_routing_tree(topo, root=0)
        assert tree.parent_of(2) == 1
        assert tree.parent_of(3) == 2
        maintenance = TreeMaintenance(tree, topo)
        result = maintenance.handle_node_failure(1)
        # Node 2 reattaches through node 5 (a neighbour at level 1); its
        # subtree (3, 4) stays intact below it.
        assert result.reattached[2] == 5
        assert tree.parent_of(3) == 2
        assert tree.parent_of(4) == 3

    def test_rank_changes_reported(self) -> None:
        # Chain 0 - 1 - 2 - 3 - 4 plus node 5 linked to both 0 and 2: when
        # node 1 fails, node 2's subtree moves under node 5, whose rank grows
        # from 0 (leaf) to 3.
        topo = Topology.from_positions(
            [(0, 0), (100, 0), (200, 0), (300, 0), (400, 0), (100, 60)], comm_range=125.0
        )
        tree = build_routing_tree(topo, root=0)
        assert tree.rank(5) == 0
        maintenance = TreeMaintenance(tree, topo)
        result = maintenance.handle_node_failure(1)
        assert result.rank_changes.get(5) == 3
        assert tree.rank(0) == 4

    def test_root_failure_rejected(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        tree = build_routing_tree(topo, root=0)
        maintenance = TreeMaintenance(tree, topo)
        with pytest.raises(RoutingError):
            maintenance.handle_node_failure(0)


@settings(max_examples=30, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_tree_invariants_on_random_topologies(num_nodes: int, seed: int) -> None:
    """Levels increase by one along edges; ranks are consistent with children."""
    topo = Topology.random(num_nodes, area=(300.0, 300.0), comm_range=120.0, seed=seed)
    root = topo.center_node()
    tree = build_routing_tree(topo, root=root)
    for node in tree.nodes:
        parent = tree.parent_of(node)
        if parent is not None:
            assert tree.level(node) == tree.level(parent) + 1
            assert topo.in_range(node, parent)
        kids = tree.children(node)
        if kids:
            assert tree.rank(node) == 1 + max(tree.rank(kid) for kid in kids)
        else:
            assert tree.rank(node) == 0
    # Every node of the root's connected component is spanned.
    assert set(tree.nodes) == set(topo.connected_component_of(root))
