"""Tests for the sweep orchestrator: jobs, store, executor, progress, api."""

from __future__ import annotations

import io
import json

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.metrics import RunMetrics
from repro.experiments.runner import run_experiment, run_protocol_comparison
from repro.experiments.scenarios import rate_sweep_workload
from repro.orchestrator import (
    ExperimentSpec,
    ProgressReporter,
    ResultStore,
    RunJob,
    SweepExecutor,
    expand_experiment,
    metrics_from_dict,
    metrics_to_dict,
    run_experiments,
    run_sweep,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.orchestrator.jobs import (
    query_from_dict,
    query_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.query.query import QuerySpec, SourceSelection
from repro.radio.energy import MICA2_TYPICAL


def _workload() -> object:
    return rate_sweep_workload(1.0)


def _jobs(num_runs: int = 2):
    return expand_experiment(
        smoke_scale(), "NTS-SS", workload=_workload(), num_runs=num_runs
    )


class TestSerialization:
    def test_scenario_round_trip(self) -> None:
        scenario = smoke_scale().with_overrides(
            power_profile=MICA2_TYPICAL, break_even_time=0.0025, measure_from=1.0
        )
        restored = scenario_from_dict(scenario_to_dict(scenario))
        assert restored == scenario

    def test_workload_round_trip(self) -> None:
        workload = rate_sweep_workload(2.5, deadline=0.3)
        assert workload_from_dict(workload_to_dict(workload)) == workload

    def test_query_round_trip_policy_and_explicit_sources(self) -> None:
        policy_query = QuerySpec(query_id=1, period=0.5, start_time=2.0)
        explicit_query = QuerySpec(
            query_id=2, period=1.0, sources=frozenset({3, 1, 2}), deadline=0.75
        )
        assert query_from_dict(query_to_dict(policy_query)) == policy_query
        restored = query_from_dict(query_to_dict(explicit_query))
        assert restored == explicit_query
        assert restored.sources == frozenset({1, 2, 3})

    def test_metrics_round_trip_is_exact(self) -> None:
        metrics = RunMetrics(
            protocol="NTS-SS",
            duration=12.0,
            average_duty_cycle=0.123456789012345,
            duty_cycle_per_node={0: 0.1, 7: 0.2},
            duty_cycle_by_rank={0: 0.1, 1: 0.2},
            average_query_latency=0.0123,
            max_query_latency=0.5,
            deliveries=42,
            delivery_ratio=0.97,
            energy_per_node={0: 1.5, 7: 2.5},
            sleep_intervals=[0.01, 0.02],
            channel_stats={"tx": 10},
        )
        restored = metrics_from_dict(json.loads(json.dumps(metrics_to_dict(metrics))))
        assert restored == metrics
        assert all(isinstance(key, int) for key in restored.duty_cycle_per_node)


class TestRunJob:
    def test_requires_exactly_one_workload_source(self) -> None:
        scenario = smoke_scale()
        with pytest.raises(ValueError):
            RunJob(scenario=scenario, protocol="NTS-SS", seed=1)
        with pytest.raises(ValueError):
            RunJob(
                scenario=scenario,
                protocol="NTS-SS",
                seed=1,
                workload=_workload(),
                queries=(QuerySpec(query_id=1, period=1.0),),
            )

    def test_digest_is_stable_and_parameter_sensitive(self) -> None:
        job_a, job_b = _jobs(num_runs=2)
        assert job_a.digest == _jobs(num_runs=2)[0].digest
        assert job_a.digest != job_b.digest  # different seeds
        other_protocol = RunJob(
            scenario=job_a.scenario, protocol="DTS-SS", seed=job_a.seed, workload=job_a.workload
        )
        assert other_protocol.digest != job_a.digest

    def test_dict_round_trip_preserves_digest(self) -> None:
        for job in _jobs(num_runs=2):
            assert RunJob.from_dict(json.loads(json.dumps(job.to_dict()))).digest == job.digest

    def test_resolve_queries_is_deterministic_per_seed(self) -> None:
        job_a, job_b = _jobs(num_runs=2)
        assert job_a.resolve_queries() == job_a.resolve_queries()
        starts_a = [q.start_time for q in job_a.resolve_queries()]
        starts_b = [q.start_time for q in job_b.resolve_queries()]
        assert starts_a != starts_b  # replication seeds re-randomize starts

    def test_expand_experiment_seeds_replications(self) -> None:
        scenario = smoke_scale()
        jobs = expand_experiment(scenario, "NTS-SS", workload=_workload(), num_runs=3)
        assert [job.seed for job in jobs] == [scenario.seed, scenario.seed + 1, scenario.seed + 2]


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path) -> None:
        store = ResultStore(tmp_path / "cache")
        store.put("abc", {"metrics": {"x": 1.0}})
        assert "abc" in store
        assert store.get("abc")["metrics"] == {"x": 1.0}
        assert store.get("missing") is None

    def test_survives_reopen_and_truncated_tail(self, tmp_path) -> None:
        store = ResultStore(tmp_path / "cache")
        store.put("abc", {"value": 1})
        store.put("def", {"value": 2})
        with store.shard_path("ghi").open("a", encoding="utf-8") as handle:
            handle.write('{"digest": "ghi", "truncat')
        reopened = ResultStore(tmp_path / "cache")
        assert len(reopened) == 2
        assert reopened.get("abc")["value"] == 1
        assert "ghi" not in reopened

    def test_ignores_records_from_other_schema_versions(self, tmp_path) -> None:
        store = ResultStore(tmp_path / "cache")
        with store.shard_path("old").open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"digest": "old", "version": -1}) + "\n")
        assert "old" not in ResultStore(tmp_path / "cache")


class TestSweepExecution:
    def test_parallel_matches_serial_bit_for_bit(self) -> None:
        jobs = _jobs(num_runs=4)
        serial = run_sweep(jobs, workers=1)
        parallel = run_sweep(jobs, workers=4)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel, strict=True):
            assert a.job.digest == b.job.digest
            assert a.metrics == b.metrics
            assert a.extras == b.extras

    def test_warm_store_returns_cached_without_rerunning(self, tmp_path, monkeypatch) -> None:
        jobs = _jobs(num_runs=2)
        store = ResultStore(tmp_path / "cache")
        cold = run_sweep(jobs, workers=1, store=store)
        assert all(not result.cached for result in cold)
        assert len(store) == 2

        # Make any simulator execution explode: a warm sweep must not run one.
        monkeypatch.setattr(
            "repro.orchestrator.executor.run_single",
            lambda *args, **kwargs: pytest.fail("simulator ran on a warm store"),
        )
        warm = run_sweep(jobs, workers=1, store=store)
        assert all(result.cached for result in warm)
        for a, b in zip(cold, warm, strict=True):
            assert a.metrics == b.metrics
            assert a.extras == b.extras

    def test_interrupted_sweep_resumes_from_store(self, tmp_path) -> None:
        jobs = _jobs(num_runs=3)
        store = ResultStore(tmp_path / "cache")
        run_sweep(jobs[:2], workers=1, store=store)  # the "interrupted" prefix
        executor = SweepExecutor(workers=1, store=ResultStore(tmp_path / "cache"))
        executor.run(jobs)
        assert executor.last_cached == 2
        assert executor.last_executed == 1

    def test_duplicate_jobs_execute_once(self, tmp_path) -> None:
        job = _jobs(num_runs=1)[0]
        executor = SweepExecutor(workers=1, store=ResultStore(tmp_path / "cache"))
        results = executor.run([job, job, job])
        assert len(results) == 3
        assert len({id(result) for result in results}) == 1
        # One simulator run; the fanned-out duplicates count as cached.
        assert executor.last_executed == 1
        assert executor.last_cached == 2

    def test_executor_rejects_zero_workers(self) -> None:
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)


class TestExperimentIntegration:
    def test_run_experiment_parallel_and_store_match_serial(self, tmp_path) -> None:
        scenario = smoke_scale()
        workload = _workload()
        serial = run_experiment(scenario, "NTS-SS", workload=workload, num_runs=2)
        parallel = run_experiment(
            scenario, "NTS-SS", workload=workload, num_runs=2, parallel=2
        )
        stored = run_experiment(
            scenario, "NTS-SS", workload=workload, num_runs=2, store=tmp_path / "cache"
        )
        warm = run_experiment(
            scenario, "NTS-SS", workload=workload, num_runs=2, store=tmp_path / "cache"
        )
        for other in (parallel, stored, warm):
            assert other.metrics == serial.metrics
            assert other.per_run_metrics == serial.per_run_metrics
            assert other.extras == serial.extras

    def test_experiment_records_per_replication_queries(self) -> None:
        result = run_experiment(
            smoke_scale(), "NTS-SS", workload=_workload(), num_runs=2
        )
        assert len(result.per_run_queries) == 2
        assert result.queries == result.per_run_queries[0]
        starts = [[q.start_time for q in queries] for queries in result.per_run_queries]
        assert starts[0] != starts[1]  # per-replication start-time randomization

    def test_fixed_queries_identical_across_replications(self) -> None:
        queries = [QuerySpec(query_id=1, period=1.0, start_time=1.0)]
        result = run_experiment(
            smoke_scale().with_overrides(duration=8.0), "NTS-SS", queries=queries, num_runs=2
        )
        assert result.per_run_queries == [queries, queries]

    def test_protocol_comparison_routes_through_orchestrator(self, tmp_path) -> None:
        scenario = smoke_scale()
        cold = run_protocol_comparison(
            scenario,
            ["NTS-SS", "SPAN"],
            workload=_workload(),
            num_runs=1,
            store=tmp_path / "cache",
        )
        warm = run_protocol_comparison(
            scenario,
            ["NTS-SS", "SPAN"],
            workload=_workload(),
            num_runs=1,
            store=tmp_path / "cache",
        )
        assert set(cold) == {"NTS-SS", "SPAN"}
        for protocol in cold:
            assert warm[protocol].metrics == cold[protocol].metrics

    def test_run_experiments_preserves_spec_order(self) -> None:
        scenario = smoke_scale()
        specs = [
            ExperimentSpec(scenario=scenario, protocol=protocol, workload=_workload(), num_runs=1)
            for protocol in ("SPAN", "NTS-SS")
        ]
        results = run_experiments(specs)
        assert [result.protocol for result in results] == ["SPAN", "NTS-SS"]

    def test_spec_requires_exactly_one_workload_source(self) -> None:
        with pytest.raises(ValueError):
            ExperimentSpec(scenario=smoke_scale(), protocol="NTS-SS")


class TestProgressReporter:
    def test_reports_counts_eta_and_summary(self) -> None:
        stream = io.StringIO()
        reporter = ProgressReporter(label="test", stream=stream, min_interval=0.0)
        reporter.start(3)
        assert reporter.eta() is None
        reporter.job_done(cached=True, label="a")
        reporter.job_done(cached=False, label="b")
        assert reporter.eta() is not None
        reporter.job_done(cached=False, label="c")
        reporter.finish()
        text = stream.getvalue()
        assert "[test] 3/3" in text
        assert "(1 cached)" in text
        assert "finished: 2 executed, 1 cached" in text

    def test_sweep_with_progress_stream(self) -> None:
        stream = io.StringIO()
        reporter = ProgressReporter(label="sweep", stream=stream, min_interval=0.0)
        run_sweep(_jobs(num_runs=1), progress=reporter)
        assert "1/1" in stream.getvalue()
