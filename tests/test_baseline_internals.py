"""Unit tests of baseline-protocol internals (schedules and send policies)."""

from __future__ import annotations

import pytest

from repro.baselines.psm import PsmConfig, PsmPowerManager, PsmSendPolicy
from repro.baselines.sync import SyncConfig, SyncPowerManager
from repro.net.node import build_network
from repro.net.packet import AtimPacket
from repro.net.topology import Topology
from repro.query.query import QuerySpec
from repro.radio.energy import IDEAL
from repro.radio.states import RadioState
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator

PAIR = Topology.line(2, spacing=50.0, comm_range=100.0)


def build_pair(seed: int = 0):
    sim = Simulator(seed=seed)
    network = build_network(sim, PAIR, power_profile=IDEAL)
    tree = build_routing_tree(PAIR, root=0)
    return sim, network, tree


class TestSyncPowerManager:
    def test_radio_follows_configured_windows(self) -> None:
        sim, network, tree = build_pair()
        config = SyncConfig(period=0.2, duty_cycle=0.25)
        SyncPowerManager(sim, network.node(0), config)
        # Mid active window: awake; mid sleep window: asleep.
        sim.run(until=0.02)
        assert network.node(0).radio.is_awake
        sim.run(until=0.1)
        assert network.node(0).radio.is_asleep
        sim.run(until=0.21)
        assert network.node(0).radio.is_awake

    def test_long_run_duty_cycle_matches_configuration(self) -> None:
        sim, network, tree = build_pair()
        config = SyncConfig(period=0.2, duty_cycle=0.3)
        SyncPowerManager(sim, network.node(0), config)
        sim.run(until=20.0)
        network.node(0).radio.finalize()
        assert network.node(0).radio.tracker.duty_cycle() == pytest.approx(0.3, abs=0.03)


class TestPsmSendPolicy:
    def test_send_deferred_to_next_atim_window_end(self) -> None:
        sim, network, tree = build_pair()
        config = PsmConfig(beacon_period=0.2, atim_window=0.025)
        manager = PsmPowerManager(sim, network.node(1), config)
        policy = PsmSendPolicy(config, manager)
        policy.query_registered(
            QuerySpec(query_id=1, period=1.0),
            node_id=1,
            tree=tree,
            participating_children=[],
            is_source=True,
        )
        # Ready mid-interval: deferred to the end of the next ATIM window.
        send_at = policy.send_time(1, 0, ready_time=0.31)
        assert send_at == pytest.approx(0.4 + 0.025)
        # Ready exactly on a beacon boundary: sent within that interval.
        assert policy.send_time(1, 1, ready_time=0.4) == pytest.approx(0.4 + 0.025)

    def test_buffered_traffic_is_announced_at_the_beacon(self) -> None:
        sim, network, tree = build_pair()
        config = PsmConfig()
        manager = PsmPowerManager(sim, network.node(1), config)
        policy = PsmSendPolicy(config, manager)
        policy.query_registered(
            QuerySpec(query_id=1, period=1.0),
            node_id=1,
            tree=tree,
            participating_children=[],
            is_source=True,
        )
        policy.send_time(1, 0, ready_time=0.05)
        sim.run(until=0.21)
        assert manager.atims_sent == 1

    def test_atim_reception_keeps_node_awake_for_the_data_phase(self) -> None:
        sim, network, tree = build_pair()
        config = PsmConfig()
        manager = PsmPowerManager(sim, network.node(0), config)
        policy = PsmSendPolicy(config, manager)
        # Without traffic the node sleeps right after the ATIM window...
        sim.run(until=config.atim_window + 0.01)
        assert network.node(0).radio.is_asleep
        # ...but an ATIM heard in the next window keeps it up.
        sim.schedule_at(config.beacon_period + 0.005, policy.control_received,
                        AtimPacket(src=1, dst=0))
        sim.run(until=config.beacon_period + config.atim_window + 0.02)
        assert network.node(0).radio.is_awake
        # And after the advertisement window it goes back to sleep.
        sim.run(until=config.beacon_period + config.data_phase_end_offset + 0.05)
        assert network.node(0).radio.is_asleep


class TestEssatChildFailurePath:
    def test_child_declared_failed_after_repeated_silence(self) -> None:
        """The parent drops a dead child's dependency and resumes sleeping."""
        from repro.core.protocol import EssatProtocolSuite

        star = Topology.from_positions([(0, 0), (60, 0), (0, 60)], comm_range=80.0)
        sim = Simulator(seed=4)
        network = build_network(sim, star, power_profile=IDEAL)
        tree = build_routing_tree(star, root=0)
        deliveries = []
        suite = EssatProtocolSuite(
            sim,
            network,
            tree,
            shaper="dts",
            max_consecutive_misses=3,
            on_root_delivery=lambda qid, k, report, t: deliveries.append((qid, k, t)),
        )
        suite.register_query(QuerySpec(query_id=1, period=1.0, start_time=1.0))
        # Leaf 2 goes silent immediately (its application dies).
        suite.node(2).service.shutdown()
        sim.run(until=15.0)
        network.finalize()
        root_shaper = suite.node(0).shaper
        assert root_shaper.stats.children_declared_failed >= 1
        # After dropping the dependency the root no longer waits for node 2,
        # so late-period deliveries complete promptly.
        late = [entry for entry in deliveries if entry[2] > 8.0]
        assert late
        for _, k, t in late:
            assert t - (1.0 + k * 1.0) < 0.5
        # And the root's duty cycle stays low because it is not stuck
        # listening for the dead child every period.
        assert network.node(0).radio.tracker.duty_cycle() < 0.6
