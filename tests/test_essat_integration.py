"""End-to-end integration tests of NTS-SS, STS-SS and DTS-SS.

These tests run the full protocol stack (query service + traffic shaper +
Safe Sleep + CSMA/CA MAC + radio + channel) on small topologies and verify
the qualitative properties the paper establishes: data keeps flowing, nodes
actually sleep, NTS-SS's duty cycle grows with rank while STS-SS/DTS-SS stay
flat, and DTS adapts through phase shifts with tiny overhead.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import EssatProtocolSuite
from repro.net.node import Network, build_network
from repro.net.topology import Topology
from repro.query.query import QuerySpec
from repro.radio.energy import IDEAL, MICA2_TYPICAL
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator


def run_essat(
    shaper: str,
    topology: Topology,
    queries,
    *,
    duration: float = 10.0,
    root: int | None = None,
    profile=IDEAL,
    seed: int = 0,
    break_even_time=None,
):
    """Run one ESSAT protocol over ``topology`` and return everything useful."""
    sim = Simulator(seed=seed)
    network = build_network(sim, topology, power_profile=profile)
    tree = build_routing_tree(topology, root=root)
    deliveries = []
    suite = EssatProtocolSuite(
        sim,
        network,
        tree,
        shaper=shaper,
        break_even_time=break_even_time,
        on_root_delivery=lambda qid, k, report, t: deliveries.append((qid, k, report, t)),
    )
    suite.register_queries(queries)
    sim.run(until=duration)
    network.finalize()
    return sim, network, tree, suite, deliveries


def duty_cycle_of(network: Network, node_id: int) -> float:
    return network.node(node_id).radio.tracker.duty_cycle()


CHAIN = Topology.line(4, spacing=100.0, comm_range=120.0)
QUERY = QuerySpec(query_id=1, period=1.0, start_time=1.0)


class TestDataDelivery:
    @pytest.mark.parametrize("shaper", ["nts", "sts", "dts"])
    def test_all_periods_delivered_at_root(self, shaper: str) -> None:
        sim, network, tree, suite, deliveries = run_essat(shaper, CHAIN, [QUERY], duration=10.0, root=0)
        ks = sorted(k for _, k, _, _ in deliveries)
        # Periods start at t=1.0 with P=1.0; by t=10 at least 8 must be complete.
        assert len(ks) >= 8
        assert ks == list(range(len(ks)))

    @pytest.mark.parametrize("shaper", ["nts", "sts", "dts"])
    def test_aggregates_contain_the_single_leaf_source(self, shaper: str) -> None:
        sim, network, tree, suite, deliveries = run_essat(shaper, CHAIN, [QUERY], duration=6.0, root=0)
        assert deliveries
        for _, _, report, _ in deliveries:
            assert report.contributing_sources == 1
            assert report.value == pytest.approx(3.0)  # leaf node id

    @pytest.mark.parametrize("shaper", ["nts", "sts", "dts"])
    def test_multiple_queries_coexist(self, shaper: str) -> None:
        queries = [
            QuerySpec(query_id=1, period=0.5, start_time=1.0),
            QuerySpec(query_id=2, period=1.0, start_time=1.3),
            QuerySpec(query_id=3, period=1.5, start_time=0.7),
        ]
        sim, network, tree, suite, deliveries = run_essat(shaper, CHAIN, queries, duration=12.0, root=0)
        per_query = {}
        for qid, k, _, _ in deliveries:
            per_query.setdefault(qid, set()).add(k)
        assert set(per_query) == {1, 2, 3}
        assert len(per_query[1]) >= 18
        assert len(per_query[2]) >= 8
        assert len(per_query[3]) >= 5


class TestEnergyBehaviour:
    @pytest.mark.parametrize("shaper", ["nts", "sts", "dts"])
    def test_nodes_sleep_between_periods(self, shaper: str) -> None:
        sim, network, tree, suite, deliveries = run_essat(shaper, CHAIN, [QUERY], duration=10.0, root=0)
        for node_id in tree.nodes:
            assert duty_cycle_of(network, node_id) < 0.6, f"node {node_id} never slept"
        # The leaf only wakes to send: its duty cycle must be very low.
        assert duty_cycle_of(network, 3) < 0.1

    def test_nts_duty_cycle_increases_with_rank(self) -> None:
        # Long chain so ranks 0..5 exist; NTS idle listening grows linearly
        # with rank (Equation 1 / Figure 5).
        chain = Topology.line(6, spacing=100.0, comm_range=120.0)
        query = QuerySpec(query_id=1, period=0.5, start_time=1.0)
        sim, network, tree, suite, deliveries = run_essat("nts", chain, [query], duration=20.0, root=0)
        duty_by_rank = {tree.rank(n): duty_cycle_of(network, n) for n in tree.nodes}
        assert duty_by_rank[5] > duty_by_rank[3] > duty_by_rank[1]

    def test_shaped_protocols_beat_nts_on_interior_nodes(self) -> None:
        chain = Topology.line(6, spacing=100.0, comm_range=120.0)
        query = QuerySpec(query_id=1, period=0.5, start_time=1.0)
        results = {}
        for shaper in ("nts", "sts", "dts"):
            sim, network, tree, suite, deliveries = run_essat(shaper, chain, [query], duration=20.0, root=0)
            assert deliveries, f"{shaper} delivered nothing"
            # Average duty cycle of interior (non-leaf, non-root) nodes.
            interior = [n for n in tree.nodes if tree.rank(n) not in (0, tree.max_rank)]
            results[shaper] = sum(duty_cycle_of(network, n) for n in interior) / len(interior)
        assert results["sts"] < results["nts"]
        assert results["dts"] < results["nts"]

    def test_sts_and_dts_duty_cycle_flat_across_ranks(self) -> None:
        chain = Topology.line(6, spacing=100.0, comm_range=120.0)
        query = QuerySpec(query_id=1, period=0.5, start_time=1.0)
        for shaper in ("sts", "dts"):
            sim, network, tree, suite, deliveries = run_essat(shaper, chain, [query], duration=20.0, root=0)
            interior = [n for n in tree.nodes if 0 < tree.rank(n) < tree.max_rank]
            cycles = [duty_cycle_of(network, n) for n in interior]
            # Spread across interior ranks stays small compared to NTS's
            # rank-linear growth.
            assert max(cycles) - min(cycles) < 0.25

    def test_break_even_time_gates_short_sleeps(self) -> None:
        query = QuerySpec(query_id=1, period=0.25, start_time=1.0)
        _, network_free, tree, suite_free, _ = run_essat(
            "dts", CHAIN, [query], duration=10.0, break_even_time=0.0, root=0
        )
        _, network_gated, _, suite_gated, _ = run_essat(
            "dts", CHAIN, [query], duration=10.0, break_even_time=0.2, root=0
        )
        free_avg = sum(duty_cycle_of(network_free, n) for n in tree.nodes) / len(tree.nodes)
        gated_avg = sum(duty_cycle_of(network_gated, n) for n in tree.nodes) / len(tree.nodes)
        # A large break-even time forbids most sleeps, raising the duty cycle.
        assert gated_avg > free_avg

    def test_realistic_radio_profile_still_meets_schedule(self) -> None:
        sim, network, tree, suite, deliveries = run_essat(
            "dts", CHAIN, [QUERY], duration=10.0, profile=MICA2_TYPICAL, root=0
        )
        assert len(deliveries) >= 8


class TestLatencyBehaviour:
    @staticmethod
    def _mean_latency(deliveries, query: QuerySpec) -> float:
        latencies = [t - query.report_time(k) for _, k, _, t in deliveries]
        return sum(latencies) / len(latencies)

    def test_nts_has_lowest_latency(self) -> None:
        chain = Topology.line(5, spacing=100.0, comm_range=120.0)
        query = QuerySpec(query_id=1, period=1.0, start_time=1.0)
        latency = {}
        for shaper in ("nts", "sts", "dts"):
            sim, network, tree, suite, deliveries = run_essat(shaper, chain, [query], duration=15.0, root=0)
            assert deliveries
            latency[shaper] = self._mean_latency(deliveries, query)
        # NTS forwards greedily: no shaping delay.  STS paces every report
        # over the deadline (= period here), so its latency is in a different
        # league; DTS converges to roughly the actual multi-hop delay, i.e.
        # the same order of magnitude as NTS.
        assert latency["nts"] < latency["sts"]
        assert latency["dts"] < latency["sts"]
        assert latency["sts"] > 5 * latency["nts"]
        assert latency["dts"] <= 3 * latency["nts"] + 0.01

    def test_sts_latency_tracks_local_deadline(self) -> None:
        chain = Topology.line(5, spacing=100.0, comm_range=120.0)
        short = QuerySpec(query_id=1, period=1.0, start_time=1.0, deadline=0.2)
        long = QuerySpec(query_id=1, period=1.0, start_time=1.0, deadline=0.8)
        results = {}
        for name, query in (("short", short), ("long", long)):
            sim, network, tree, suite, deliveries = run_essat("sts", chain, [query], duration=15.0, root=0)
            assert deliveries
            results[name] = self._mean_latency(deliveries, query)
        assert results["long"] > results["short"]

    def test_dts_latency_stays_below_query_period(self) -> None:
        query = QuerySpec(query_id=1, period=1.0, start_time=1.0)
        sim, network, tree, suite, deliveries = run_essat("dts", CHAIN, [query], duration=15.0, root=0)
        assert deliveries
        for _, k, _, t in deliveries:
            assert t - query.report_time(k) < 1.5 * query.period


class TestDtsAdaptation:
    def test_dts_phase_shifts_happen_then_settle(self) -> None:
        chain = Topology.line(5, spacing=100.0, comm_range=120.0)
        query = QuerySpec(query_id=1, period=1.0, start_time=1.0)
        sim, network, tree, suite, deliveries = run_essat("dts", chain, [query], duration=20.0, root=0)
        total_shifts = sum(s.stats.phase_shifts for s in suite.shapers())
        # The initial schedule (everyone at phi) is infeasible for interior
        # nodes, so phase shifts must occur...
        assert total_shifts >= 1
        # ...but DTS converges: far fewer shifts than reports.
        total_reports = suite.total_reports_observed()
        assert total_shifts < 0.5 * total_reports

    def test_dts_overhead_below_one_bit_per_report(self) -> None:
        chain = Topology.line(5, spacing=100.0, comm_range=120.0)
        queries = [
            QuerySpec(query_id=1, period=0.5, start_time=1.0),
            QuerySpec(query_id=2, period=1.0, start_time=1.2),
            QuerySpec(query_id=3, period=1.5, start_time=0.8),
        ]
        sim, network, tree, suite, deliveries = run_essat("dts", chain, queries, duration=30.0, root=0)
        assert deliveries
        # Section 4.2.3: amortized piggyback overhead is below one bit per
        # data report once the schedules have converged.
        assert suite.overhead_bits_per_report() < 8.0

    def test_nts_and_sts_have_zero_piggyback_overhead(self) -> None:
        for shaper in ("nts", "sts"):
            sim, network, tree, suite, deliveries = run_essat(shaper, CHAIN, [QUERY], duration=8.0, root=0)
            assert suite.total_piggyback_overhead_bits() == 0


class TestSuiteApi:
    def test_unknown_shaper_rejected(self) -> None:
        sim = Simulator(seed=0)
        network = build_network(sim, CHAIN, power_profile=IDEAL)
        tree = build_routing_tree(CHAIN, root=0)
        with pytest.raises(ValueError):
            EssatProtocolSuite(sim, network, tree, shaper="tdma")

    def test_protocol_names(self) -> None:
        sim, network, tree, suite, _ = run_essat("dts", CHAIN, [], duration=0.1, root=0)
        assert suite.name == "DTS-SS"
        assert suite.node(0).name == "DTS-SS"

    def test_safe_sleep_can_be_disabled_suite_wide(self) -> None:
        sim = Simulator(seed=0)
        network = build_network(sim, CHAIN, power_profile=IDEAL)
        tree = build_routing_tree(CHAIN, root=0)
        suite = EssatProtocolSuite(sim, network, tree, shaper="nts", safe_sleep_enabled=False)
        suite.register_query(QUERY)
        sim.run(until=5.0)
        network.finalize()
        for node_id in tree.nodes:
            assert network.node(node_id).radio.tracker.duty_cycle() == pytest.approx(1.0)
