"""Determinism guarantees of the hot-path engine and channel.

The hot-path overhaul (``__slots__`` tuple-heap events, lazy deletion, the
channel's carrier-sense index, inlined radio accounting) is only admissible
because it changes *nothing* observable: same seed => identical metrics,
identical ``ChannelStats``, identical trace sequence.  These tests pin that
three ways:

* golden snapshots (``tests/golden/hotpath_golden.json``) of per-seed
  metrics and full-trace digests on the ``smoke`` and ``reduced`` scales,
* run-twice-in-one-process identity (catches accidental global state),
* parallel == serial bit-for-bit through the orchestrator, re-asserted
  against the new engine.
"""

from __future__ import annotations

import importlib.util
import json
import os
from pathlib import Path

import pytest

from repro.experiments.config import smoke_scale
from repro.orchestrator.api import ExperimentSpec, run_experiments
from repro.experiments.scenarios import rate_sweep_workload

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "hotpath_golden.json"

# The snapshot tool doubles as the regeneration script; load it by path so
# the tests and the committed golden can never disagree about methodology.
_spec = importlib.util.spec_from_file_location(
    "make_hotpath_golden", GOLDEN_DIR / "make_hotpath_golden.py"
)
golden_tool = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_tool)


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _split(key: str):
    scale, protocol, seed_part = key.split("/")
    return scale, protocol, int(seed_part.split("=")[1])


class TestGoldenSnapshots:
    def test_metrics_cells_match_golden(self, golden) -> None:
        for key, expected in golden["cells"].items():
            scale, protocol, seed = _split(key)
            got = golden_tool.metrics_snapshot(scale, protocol, seed)
            assert got == expected, f"metrics drifted for {key}"

    def test_trace_sequences_match_golden(self, golden) -> None:
        for key, expected in golden["traced"].items():
            scale, protocol, seed = _split(key)
            got = golden_tool.trace_snapshot(scale, protocol, seed)
            assert got == expected, f"trace sequence drifted for {key}"


class TestRunTwiceIdentity:
    """Property-style check: re-running a cell in-process is bit-identical."""

    @pytest.mark.parametrize("protocol", ["DTS-SS", "PSM"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_same_seed_same_everything(self, protocol: str, seed: int) -> None:
        first = golden_tool.metrics_snapshot("smoke", protocol, seed)
        second = golden_tool.metrics_snapshot("smoke", protocol, seed)
        assert first == second

    def test_same_seed_same_trace_digest(self) -> None:
        first = golden_tool.trace_snapshot("smoke", "DTS-SS", 3)
        second = golden_tool.trace_snapshot("smoke", "DTS-SS", 3)
        assert first == second


class TestParallelMatchesSerial:
    def test_parallel_equals_serial_bit_for_bit(self) -> None:
        scenario = smoke_scale()
        specs = [
            ExperimentSpec(
                scenario=scenario,
                protocol=protocol,
                workload=rate_sweep_workload(2.0),
                num_runs=2,
            )
            for protocol in ("DTS-SS", "PSM")
        ]
        serial = run_experiments(specs, workers=1)
        parallel = run_experiments(specs, workers=min(2, os.cpu_count() or 1))
        for a, b in zip(serial, parallel, strict=True):
            assert a.metrics.average_duty_cycle == b.metrics.average_duty_cycle
            assert a.metrics.average_query_latency == b.metrics.average_query_latency
            assert a.metrics.delivery_ratio == b.metrics.delivery_ratio
            assert a.metrics.channel_stats == b.metrics.channel_stats
            assert a.metrics.duty_cycle_per_node == b.metrics.duty_cycle_per_node
