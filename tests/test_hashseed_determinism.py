"""Cross-hash-seed determinism: results must not depend on PYTHONHASHSEED.

Python randomizes ``str``/``bytes`` hashing per process unless
``PYTHONHASHSEED`` is pinned, so any simulation behaviour that leaks dict
or set *iteration order* of string-keyed containers into event timing,
float accumulation, or RNG draws would produce different results from one
process to the next.  reprolint's REP003/REP005 police the sources of such
leaks statically; this test is the end-to-end proof: two fresh
subprocesses with *different* hash seeds must produce byte-identical
metrics and an identical trace digest.

This is deliberately a subprocess test -- the parent's own hash seed is
already fixed, so in-process assertions could never catch a violation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Program run in each subprocess: snapshot one smoke cell's metrics and
#: trace digest via the golden-file helpers, then print them as JSON.
_SNAPSHOT_PROGRAM = """
import json
import sys

sys.path.insert(0, {golden_dir!r})
from make_hotpath_golden import metrics_snapshot, trace_snapshot

payload = {{
    "metrics": metrics_snapshot("smoke", "DTS-SS", 1),
    "trace": trace_snapshot("smoke", "DTS-SS", 1),
}}
print(json.dumps(payload, sort_keys=True))
"""


def _snapshot_with_hash_seed(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    program = _SNAPSHOT_PROGRAM.format(golden_dir=str(REPO_ROOT / "tests" / "golden"))
    result = subprocess.run(
        [sys.executable, "-c", program],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip().splitlines()[-1]


def test_metrics_and_trace_identical_across_hash_seeds() -> None:
    first = _snapshot_with_hash_seed("1")
    second = _snapshot_with_hash_seed("2")
    assert first == second, "simulation output depends on PYTHONHASHSEED"
    # Sanity: the payload is real (a digest plus non-trivial metrics), not
    # two identically-empty snapshots.
    payload = json.loads(first)
    assert payload["trace"]["trace_records"] > 0
    assert len(payload["trace"]["trace_sha256"]) == 64
    assert payload["metrics"]["deliveries"] > 0
