"""Tests for runtime adaptation: wake-up rescheduling and late query registration."""

from __future__ import annotations

import pytest

from repro.core.protocol import EssatProtocolSuite
from repro.net.node import build_network
from repro.net.topology import Topology
from repro.query.query import QuerySpec
from repro.radio.energy import IDEAL, MICA2_TYPICAL
from repro.radio.radio import Radio
from repro.routing.tree import build_routing_tree
from repro.sim.engine import Simulator


class TestAdvanceWake:
    def test_scheduled_wake_time_reflects_pending_wake(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, MICA2_TYPICAL)
        assert radio.scheduled_wake_time is None
        radio.sleep_until(1.0)
        assert radio.scheduled_wake_time == pytest.approx(1.0)

    def test_advance_wake_moves_wake_earlier(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, MICA2_TYPICAL)
        woke = []
        radio.on_wake(lambda: woke.append(sim.now))
        radio.sleep_until(2.0)
        sim.run(until=0.5)
        radio.advance_wake(1.0)
        sim.run(until=3.0)
        assert woke[0] == pytest.approx(1.0)

    def test_advance_wake_never_delays(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, MICA2_TYPICAL)
        woke = []
        radio.on_wake(lambda: woke.append(sim.now))
        radio.sleep_until(1.0)
        radio.advance_wake(2.0)
        sim.run(until=3.0)
        assert woke[0] == pytest.approx(1.0)

    def test_advance_wake_for_past_time_wakes_immediately(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, IDEAL)
        radio.sleep()
        radio.advance_wake(0.0)
        assert radio.is_awake

    def test_advance_wake_noop_when_awake(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, IDEAL)
        radio.advance_wake(5.0)
        assert radio.is_awake
        assert radio.scheduled_wake_time is None

    def test_advance_wake_schedules_when_no_wake_pending(self) -> None:
        sim = Simulator(seed=0)
        radio = Radio(sim, 0, IDEAL)
        radio.sleep()
        radio.advance_wake(1.5)
        sim.run(until=2.0)
        assert radio.is_awake


class TestRuntimeQueryRegistration:
    def test_sleeping_nodes_wake_for_a_newly_registered_query(self) -> None:
        """Queries registered while nodes sleep must not be delayed by stale wakes."""
        chain = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim = Simulator(seed=2)
        network = build_network(sim, chain, power_profile=IDEAL)
        tree = build_routing_tree(chain, root=0)
        deliveries = []
        suite = EssatProtocolSuite(
            sim,
            network,
            tree,
            shaper="dts",
            on_root_delivery=lambda qid, k, report, t: deliveries.append((qid, k, t)),
        )
        # A slow background query puts every node to sleep for long stretches.
        suite.register_query(QuerySpec(query_id=1, period=10.0, start_time=1.0))
        # At t=5 (while everyone sleeps until ~11), a fast query arrives.
        fast = QuerySpec(query_id=2, period=0.5, start_time=5.5)
        sim.schedule_at(5.0, suite.register_query, fast)
        sim.run(until=9.0)
        fast_deliveries = [entry for entry in deliveries if entry[0] == 2]
        # Periods at 5.5, 6.0, ..., 8.5 must be delivered promptly, not after
        # the background query's next wake at t=11.
        assert len(fast_deliveries) >= 6
        first_latency = fast_deliveries[0][2] - fast.report_time(fast_deliveries[0][1])
        assert first_latency < 1.0

    def test_new_query_on_mica2_radio_still_delivered(self) -> None:
        chain = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim = Simulator(seed=2)
        network = build_network(sim, chain, power_profile=MICA2_TYPICAL)
        tree = build_routing_tree(chain, root=0)
        deliveries = []
        suite = EssatProtocolSuite(
            sim,
            network,
            tree,
            shaper="sts",
            on_root_delivery=lambda qid, k, report, t: deliveries.append((qid, k, t)),
        )
        suite.register_query(QuerySpec(query_id=1, period=8.0, start_time=1.0))
        sim.schedule_at(3.0, suite.register_query, QuerySpec(query_id=2, period=1.0, start_time=4.0))
        sim.run(until=10.0)
        assert any(qid == 2 for qid, _, _ in deliveries)
