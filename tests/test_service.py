"""The sweep service: worker pool, wire schemas, and the HTTP API end to end.

The end-to-end tests run a real :class:`~repro.service.server.SweepService`
on an ephemeral port inside a background thread and drive it with the real
:class:`~repro.service.client.ServiceClient` over real sockets -- the same
path the CI smoke job exercises through the CLI.

The worker-pool task functions below are module-level on purpose: the pool
uses the ``spawn`` start method, so they must be picklable by reference and
importable from the worker process.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.client import LocalClient
from repro.experiments.config import smoke_scale
from repro.experiments.scenarios import rate_sweep_workload
from repro.orchestrator.codec import SCHEMA_VERSION
from repro.orchestrator.executor import JobExecutionError, SweepExecutor
from repro.orchestrator.jobs import RunJob, metrics_to_dict
from repro.orchestrator.store import ResultStore
from repro.service import (
    PersistentPoolBackend,
    ServiceClient,
    ServiceError,
    SweepService,
    WorkerPool,
    decode_submit,
    encode_results,
    encode_submit,
)
from repro.service.schemas import SchemaError, decode_results, sweep_id_of


def _comparable(metrics):
    """``metrics_to_dict`` minus the wall-clock cost gauges.

    Those measure cost, not simulation outcome, and legitimately differ
    between bit-identical runs (see the ``compare=False`` note on
    :attr:`RunMetrics.counters`).
    """
    from repro.obs.adapters import WALL_CLOCK_COUNTERS

    data = metrics_to_dict(metrics)
    data["counters"] = {
        key: value
        for key, value in data["counters"].items()
        if key not in WALL_CLOCK_COUNTERS
    }
    return data


def _jobs(protocols=("DTS-SS", "PSM"), seed=7):
    scenario = smoke_scale()
    workload = rate_sweep_workload(2.0)
    return [
        RunJob(scenario=scenario, protocol=protocol, seed=seed, workload=workload)
        for protocol in protocols
    ]


# -- picklable worker-pool task functions (spawn start method) ----------------


def _square(value):
    return value * value


def _always_fails(value):
    raise ValueError(f"cannot process {value}")


def _sleep_forever(value):
    time.sleep(600.0)
    return value


def _crash_once(flag_path):
    """Hard-exit on the first attempt, succeed on the retry."""
    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text("crashed")
        os._exit(1)
    return "recovered"


class TestWorkerPool:
    def test_run_batch_returns_all_results(self) -> None:
        with WorkerPool(workers=2, task_fn=_square) as pool:
            results, failures = pool.run_batch([("a", 3), ("b", 4), ("c", 5)])
        assert failures == []
        assert results == {"a": 9, "b": 16, "c": 25}

    def test_task_exception_fails_immediately_without_retry(self) -> None:
        with WorkerPool(workers=1, task_fn=_always_fails, retries=3) as pool:
            results, failures = pool.run_batch([("bad", 1)])
        assert results == {}
        assert len(failures) == 1
        assert "ValueError" in failures[0].message
        # Deterministic exceptions never consume the retry budget.
        assert failures[0].attempts == 1

    def test_timeout_kills_worker_and_pool_stays_usable(self) -> None:
        pool = WorkerPool(
            workers=1, task_fn=_sleep_forever, task_timeout=0.3, retries=0
        )
        with pool:
            results, failures = pool.run_batch([("hung", 1)])
            assert results == {}
            assert len(failures) == 1
            assert "timed out" in failures[0].message
            assert pool.timeouts == 1
            assert pool.respawns >= 1
            # The respawned worker serves the next batch.
            pool.task_fn = _square  # only affects workers spawned afterwards
            pool.close()
            pool.start()
            results, failures = pool.run_batch([("ok", 6)])
        assert failures == []
        assert results == {"ok": 36}

    def test_crashed_worker_is_respawned_and_task_retried(self, tmp_path) -> None:
        flag = tmp_path / "crash.flag"
        with WorkerPool(workers=1, task_fn=_crash_once, retries=1) as pool:
            results, failures = pool.run_batch([("flaky", str(flag))])
            assert pool.respawns >= 1
        assert failures == []
        assert results == {"flaky": "recovered"}

    def test_crash_without_retry_budget_is_reported(self, tmp_path) -> None:
        flag = tmp_path / "crash.flag"
        with WorkerPool(workers=1, task_fn=_crash_once, retries=0) as pool:
            results, failures = pool.run_batch([("flaky", str(flag))])
        assert results == {}
        assert len(failures) == 1
        assert "died" in failures[0].message

    def test_constructor_validation(self) -> None:
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="task_timeout"):
            WorkerPool(task_timeout=0.0)
        with pytest.raises(ValueError, match="retries"):
            WorkerPool(retries=-1)


class TestPersistentPoolBackend:
    def test_pool_execution_is_bit_identical_to_serial(self) -> None:
        jobs = _jobs()
        serial = SweepExecutor()
        expected = serial.run(jobs)
        with WorkerPool(workers=2) as pool:
            executor = SweepExecutor(backend=PersistentPoolBackend(pool))
            actual = executor.run(jobs)
        assert executor.last_executed == len(jobs)
        for got, want in zip(actual, expected, strict=True):
            assert _comparable(got.metrics) == _comparable(want.metrics)
            assert got.extras == want.extras

    def test_permanent_failure_raises_job_execution_error(self) -> None:
        jobs = _jobs(protocols=("DTS-SS",))
        with WorkerPool(workers=1, task_fn=_always_fails) as pool:
            executor = SweepExecutor(backend=PersistentPoolBackend(pool))
            with pytest.raises(JobExecutionError, match="ValueError"):
                executor.run(jobs)


class TestSchemas:
    def test_submit_round_trips_through_json(self) -> None:
        jobs = _jobs()
        body = json.loads(json.dumps(encode_submit(jobs, label="smoke")))
        decoded, label = decode_submit(body)
        assert label == "smoke"
        assert decoded == jobs
        assert [job.digest for job in decoded] == [job.digest for job in jobs]

    def test_decode_submit_rejects_bad_bodies(self) -> None:
        jobs = _jobs(protocols=("DTS-SS",))
        good = encode_submit(jobs)
        with pytest.raises(SchemaError, match="JSON object"):
            decode_submit([1, 2, 3])
        with pytest.raises(SchemaError, match="unsupported schema version"):
            decode_submit(dict(good, version=99))
        with pytest.raises(SchemaError, match="non-empty list"):
            decode_submit(dict(good, jobs=[]))
        with pytest.raises(SchemaError, match="does not decode"):
            decode_submit(dict(good, jobs=[{"nonsense": True}]))

    def test_sweep_id_is_order_sensitive_and_stable(self) -> None:
        jobs = _jobs()
        assert sweep_id_of(jobs) == sweep_id_of(list(jobs))
        assert sweep_id_of(jobs) != sweep_id_of(list(reversed(jobs)))

    def test_results_round_trip_and_digest_cross_check(self) -> None:
        jobs = _jobs(protocols=("DTS-SS",))
        results = SweepExecutor().run(jobs)
        payload = json.loads(json.dumps(encode_results(results)))
        decoded = decode_results(payload, jobs, version=SCHEMA_VERSION)
        assert metrics_to_dict(decoded[0].metrics) == metrics_to_dict(
            results[0].metrics
        )
        assert decoded[0].extras == results[0].extras
        with pytest.raises(SchemaError, match="digest"):
            decode_results(payload, _jobs(protocols=("PSM",)))


# -- the HTTP API, end to end -------------------------------------------------


def _start_test_service(store, *, workers: int = 1):
    """Run a SweepService in a background thread; returns (port, service, stop)."""
    box = {}
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            import asyncio

            service = SweepService(store=store, workers=workers)
            port = await service.start(port=0)
            stop = asyncio.Event()
            box.update(
                service=service,
                port=port,
                stop=stop,
                loop=asyncio.get_running_loop(),
            )
            ready.set()
            await stop.wait()
            await service.drain_and_stop()

        import asyncio

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=10.0), "service failed to start"

    def shutdown() -> None:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=10.0)

    return box["port"], box["service"], shutdown


@pytest.fixture()
def service(tmp_path):
    store = ResultStore(tmp_path / "service-cache")
    port, svc, shutdown = _start_test_service(store)
    try:
        yield ServiceClient(f"http://127.0.0.1:{port}", poll_interval=0.05), svc
    finally:
        shutdown()


class TestServiceEndToEnd:
    def test_http_sweep_is_bit_identical_to_local(self, service, tmp_path) -> None:
        client, _ = service
        jobs = _jobs()
        remote = client.run_jobs(jobs, label="smoke")
        assert client.last_executed == len(jobs)
        assert client.last_deduplicated is False
        local = LocalClient(store=ResultStore(tmp_path / "local-cache")).run_jobs(jobs)
        for got, want in zip(remote, local, strict=True):
            assert _comparable(got.metrics) == _comparable(want.metrics)
            assert got.extras == want.extras

    def test_resubmission_is_deduplicated_with_zero_reexecution(
        self, service
    ) -> None:
        client, _ = service
        jobs = _jobs()
        first = client.run_jobs(jobs, label="smoke")
        after_first = client.healthz()["metrics"]
        assert after_first["service.jobs_executed"] == len(jobs)
        again = client.run_jobs(jobs, label="smoke")
        assert client.last_deduplicated is True
        # The acceptance bar: the second submission queues no work at all.
        after_second = client.healthz()["metrics"]
        assert after_second["service.jobs_executed"] == len(jobs)
        assert after_second["service.sweeps_deduplicated"] == 1.0
        for got, want in zip(again, first, strict=True):
            assert metrics_to_dict(got.metrics) == metrics_to_dict(want.metrics)

    def test_healthz_reports_store_and_queue(self, service) -> None:
        client, _ = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["schema_version"] == SCHEMA_VERSION
        assert health["queue_depth"] == 0
        assert set(health["store"]) >= {"records", "migrated", "evicted", "shards"}
        assert isinstance(health["metrics"], dict)

    def test_unknown_sweep_is_404(self, service) -> None:
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.status("0" * 64)
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.results("0" * 64, [])
        assert excinfo.value.status == 404

    def test_facade_methods_work_over_http(self, service, tmp_path) -> None:
        """A derived facade method (run_experiment) is transport-agnostic."""
        client, _ = service
        scenario = smoke_scale()
        remote = client.run_experiment(
            scenario, "DTS-SS", workload=rate_sweep_workload(2.0), num_runs=2
        )
        local = LocalClient(store=ResultStore(tmp_path / "local-cache")).run_experiment(
            scenario, "DTS-SS", workload=rate_sweep_workload(2.0), num_runs=2
        )
        assert _comparable(remote.metrics) == _comparable(local.metrics)
        assert remote.extras == local.extras

    def test_submitted_results_warm_the_service_store(self, service) -> None:
        client, svc = service
        jobs = _jobs(protocols=("DTS-SS",))
        client.run_jobs(jobs)
        assert jobs[0].digest in svc.store
        # A different client sweep over the same job is a pure cache hit.
        other = ServiceClient(client.base_url, poll_interval=0.05)
        other.run_jobs(_jobs(protocols=("DTS-SS", "PSM")))
        assert other.last_cached >= 1


class TestDrain:
    def test_draining_service_rejects_new_sweeps(self, tmp_path) -> None:
        store = ResultStore(tmp_path / "cache")
        port, svc, shutdown = _start_test_service(store)
        client = ServiceClient(f"http://127.0.0.1:{port}", poll_interval=0.05)
        try:
            jobs = _jobs(protocols=("DTS-SS",))
            client.run_jobs(jobs)
        finally:
            shutdown()
        # After drain the listener is down entirely.
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
