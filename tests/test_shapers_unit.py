"""Unit tests of the NTS/STS/DTS expected-time arithmetic (no network)."""

from __future__ import annotations

import pytest

from repro.core.dts import DynamicTrafficShaper
from repro.core.nts import NoTrafficShaping
from repro.core.sts import StaticTrafficShaper
from repro.core.timing import TimingTable
from repro.net.packet import DataReportPacket, PhaseRequestPacket
from repro.query.query import QuerySpec
from repro.routing.tree import RoutingTree
from repro.sim.engine import Simulator


def make_chain_tree(length: int = 4) -> RoutingTree:
    """Chain 0 <- 1 <- 2 <- ... so node ranks are length-1, ..., 1, 0."""
    return RoutingTree(root=0, parent={i: i - 1 for i in range(1, length)})


def register(shaper, query: QuerySpec, node_id: int, tree: RoutingTree) -> None:
    children = tree.children(node_id)
    shaper.query_registered(
        query,
        node_id=node_id,
        tree=tree,
        participating_children=children,
        is_source=tree.is_leaf(node_id),
    )


def report_packet(src: int, dst: int, query_id: int, k: int, sequence: int = 0, phase_update=None):
    return DataReportPacket(
        src=src, dst=dst, query_id=query_id, report_index=k, sequence=sequence,
        phase_update=phase_update,
    )


QUERY = QuerySpec(query_id=1, period=1.0, start_time=2.0)


class ForcedRetryCsmaStub:
    """A CSMA-shaped control sender for overhead-accounting tests.

    Mimics the two MAC behaviours the accounting must be robust to: a frame
    that is *accepted* but spends a long time in link-layer retries (the
    answer it solicits is delayed), and a frame *rejected* outright because
    the transmit queue is full (``send`` returns ``False``, exactly like
    :meth:`repro.mac.csma.CsmaMac.send`).
    """

    def __init__(self, reject_next: int = 0) -> None:
        self.sent: list = []
        self.reject_next = reject_next

    def send(self, packet) -> bool:
        if self.reject_next > 0:
            self.reject_next -= 1
            return False
        self.sent.append(packet)
        return True


class TestNts:
    def test_initial_expectations_equal_query_start(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = NoTrafficShaping(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        assert table.next_receive(1, 2) == pytest.approx(2.0)
        assert table.next_send(1) == pytest.approx(2.0)

    def test_root_has_no_send_expectation(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = NoTrafficShaping(sim, table, node_id=0)
        register(shaper, QUERY, node_id=0, tree=make_chain_tree())
        assert table.next_send(1) is None
        assert table.next_receive(1, 1) == pytest.approx(2.0)

    def test_send_time_is_immediate(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = NoTrafficShaping(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        assert shaper.send_time(1, 0, ready_time=2.4) == pytest.approx(2.4)

    def test_receive_advances_to_next_period(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = NoTrafficShaping(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0))
        assert table.next_receive(1, 2) == pytest.approx(3.0)

    def test_send_completion_advances_to_next_period(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = NoTrafficShaping(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_sent(1, 0, submitted_at=2.1, completed_at=2.15, success=True)
        assert table.next_send(1) == pytest.approx(3.0)

    def test_timeout_follows_rank_formula(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)  # M = 3
        shaper = NoTrafficShaping(sim, table, node_id=1)  # rank 2
        register(shaper, QUERY, node_id=1, tree=tree)
        # t_TO(d) = (d + 1) * D / M with D = period = 1.0.
        assert shaper.collection_timeout(1, 0, period_start=2.0) == pytest.approx(2.0 + 3 * 1.0 / 3)

    def test_missing_children_roll_to_next_period(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = NoTrafficShaping(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.handle_missing_children(1, 0, missing={2}, period_start=2.0)
        assert table.next_receive(1, 2) == pytest.approx(3.0)
        assert table.next_send(1) == pytest.approx(3.0)

    def test_repeated_misses_trigger_failure_callback(self) -> None:
        sim, table = Simulator(), TimingTable()
        failures = []
        shaper = NoTrafficShaping(
            sim, table, node_id=1,
            on_child_failure=lambda q, c: failures.append((q, c)),
            max_consecutive_misses=3,
        )
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        for k in range(3):
            shaper.handle_missing_children(1, k, missing={2}, period_start=2.0 + k)
        assert failures == [(1, 2)]

    def test_reception_resets_miss_count(self) -> None:
        sim, table = Simulator(), TimingTable()
        failures = []
        shaper = NoTrafficShaping(
            sim, table, node_id=1,
            on_child_failure=lambda q, c: failures.append((q, c)),
            max_consecutive_misses=3,
        )
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.handle_missing_children(1, 0, missing={2}, period_start=2.0)
        shaper.handle_missing_children(1, 1, missing={2}, period_start=3.0)
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=2, sequence=0))
        shaper.handle_missing_children(1, 3, missing={2}, period_start=5.0)
        assert failures == []

    def test_child_removed_clears_expectation(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = NoTrafficShaping(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.child_removed(1, 2)
        assert table.next_receive(1, 2) is None


class TestSts:
    def test_local_deadline_is_deadline_over_max_rank(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(5)  # M = 4
        shaper = StaticTrafficShaper(sim, table, node_id=2)
        register(shaper, QUERY.with_deadline(0.8), node_id=2, tree=tree)
        assert shaper.local_deadline(1) == pytest.approx(0.2)

    def test_expected_times_follow_rank_schedule(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)  # ranks: node0=3, node1=2, node2=1, node3=0
        shaper = StaticTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=tree)  # D = P = 1.0, l = 1/3
        l = 1.0 / 3.0
        # Node 1 (rank 2) sends at phi + k*P + 2*l and expects its child
        # (node 2, rank 1) at that child's send time phi + k*P + 1*l.
        assert shaper.expected_send_time(1, 0) == pytest.approx(2.0 + 2 * l)
        assert shaper.expected_receive_time(1, 2, 0) == pytest.approx(2.0 + l)
        assert table.next_send(1) == pytest.approx(2.0 + 2 * l)
        assert table.next_receive(1, 2) == pytest.approx(2.0 + l)

    def test_leaf_sends_at_period_start(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)
        shaper = StaticTrafficShaper(sim, table, node_id=3)  # rank 0 leaf
        register(shaper, QUERY, node_id=3, tree=tree)
        assert shaper.expected_send_time(1, 0) == pytest.approx(2.0)

    def test_early_report_buffered_until_expected_send(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)
        shaper = StaticTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=tree)
        expected = shaper.expected_send_time(1, 0)
        assert shaper.send_time(1, 0, ready_time=2.05) == pytest.approx(expected)
        assert shaper.stats.reports_buffered == 1

    def test_late_report_sent_immediately(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)
        shaper = StaticTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=tree)
        expected = shaper.expected_send_time(1, 0)
        late = expected + 0.25
        assert shaper.send_time(1, 0, ready_time=late) == pytest.approx(late)
        assert shaper.stats.reports_sent_late == 1

    def test_zero_local_deadline_degenerates_to_nts(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)
        shaper = StaticTrafficShaper(sim, table, node_id=1)
        tiny = QUERY.with_deadline(1e-12)
        register(shaper, tiny, node_id=1, tree=tree)
        # With l ~= 0 the schedule collapses to phi + k*P for every rank.
        assert shaper.expected_send_time(1, 0) == pytest.approx(2.0, abs=1e-9)
        assert shaper.expected_receive_time(1, 2, 0) == pytest.approx(2.0, abs=1e-9)

    def test_receive_and_send_advance_schedule(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)
        shaper = StaticTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=tree)
        l = 1.0 / 3.0
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0))
        assert table.next_receive(1, 2) == pytest.approx(3.0 + l)
        shaper.report_sent(1, 0, submitted_at=2.6, completed_at=2.7, success=True)
        assert table.next_send(1) == pytest.approx(3.0 + 2 * l)

    def test_timeout_is_expected_send_plus_local_deadline(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)
        shaper = StaticTrafficShaper(sim, table, node_id=1, timeout_constant=0.05)
        register(shaper, QUERY, node_id=1, tree=tree)
        l = 1.0 / 3.0
        expected = shaper.expected_send_time(1, 0)
        assert shaper.collection_timeout(1, 0, period_start=2.0) == pytest.approx(
            expected + l - 0.05
        )

    def test_refresh_topology_recomputes_schedule(self) -> None:
        sim, table = Simulator(), TimingTable()
        tree = make_chain_tree(4)
        shaper = StaticTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=tree)
        before = shaper.expected_send_time(1, 0)
        # Removing the deepest node shrinks node 1's rank from 2 to 1 and M to 2.
        tree.remove_subtree(3)
        shaper.refresh_topology(tree)
        after = shaper.expected_send_time(1, 1)
        assert shaper.local_deadline(1) == pytest.approx(0.5)
        assert after == pytest.approx(3.0 + 0.5)
        assert before != after


class TestDts:
    def test_initial_expectations_equal_query_start(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        assert shaper.expected_send_time(1) == pytest.approx(2.0)
        assert shaper.expected_receive_time(1, 2) == pytest.approx(2.0)
        assert table.next_send(1) == pytest.approx(2.0)

    def test_on_time_send_advances_by_period_without_phase_update(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        # Ready early: buffered until s(0) = 2.0.
        assert shaper.send_time(1, 0, ready_time=1.9) == pytest.approx(2.0)
        assert shaper.phase_update_for(1, 0, submit_time=2.0) is None
        shaper.report_sent(1, 0, submitted_at=2.0, completed_at=2.01, success=True)
        assert shaper.expected_send_time(1) == pytest.approx(3.0)
        assert shaper.stats.phase_shifts == 0

    def test_late_send_causes_phase_shift_and_piggyback(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        assert shaper.send_time(1, 0, ready_time=2.4) == pytest.approx(2.4)
        update = shaper.phase_update_for(1, 0, submit_time=2.4)
        assert update == pytest.approx(3.4)
        shaper.report_sent(1, 0, submitted_at=2.4, completed_at=2.45, success=True)
        assert shaper.expected_send_time(1) == pytest.approx(3.4)
        assert shaper.stats.phase_shifts == 1
        assert shaper.stats.phase_updates_piggybacked == 1

    def test_parent_uses_piggybacked_phase_update(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        packet = report_packet(2, 1, 1, k=0, sequence=0, phase_update=3.7)
        shaper.report_received(1, child=2, packet=packet)
        assert shaper.expected_receive_time(1, 2) == pytest.approx(3.7)
        assert table.next_receive(1, 2) == pytest.approx(3.7)

    def test_parent_advances_by_period_without_phase_update(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0))
        assert shaper.expected_receive_time(1, 2) == pytest.approx(3.0)

    def test_sequence_gap_without_update_requests_phase(self) -> None:
        sim, table = Simulator(), TimingTable()
        sent_control = []
        shaper = DynamicTrafficShaper(
            sim, table, node_id=1, send_control=sent_control.append
        )
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0))
        # Sequence jumps from 0 to 2: one report was lost.
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=2, sequence=2))
        assert shaper.stats.sequence_gaps_detected == 1
        assert len(sent_control) == 1
        assert isinstance(sent_control[0], PhaseRequestPacket)
        assert sent_control[0].dst == 2

    def test_sequence_gap_with_piggybacked_update_needs_no_request(self) -> None:
        sim, table = Simulator(), TimingTable()
        sent_control = []
        shaper = DynamicTrafficShaper(sim, table, node_id=1, send_control=sent_control.append)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0))
        shaper.report_received(
            1, child=2, packet=report_packet(2, 1, 1, k=2, sequence=2, phase_update=5.5)
        )
        assert sent_control == []
        assert shaper.expected_receive_time(1, 2) == pytest.approx(5.5)

    def test_phase_request_forces_piggyback_on_next_report(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=2)
        register(shaper, QUERY, node_id=2, tree=make_chain_tree())
        shaper.control_received(PhaseRequestPacket(src=1, dst=2, query_id=1))
        assert shaper.send_time(1, 0, ready_time=1.9) == pytest.approx(2.0)
        update = shaper.phase_update_for(1, 0, submit_time=2.0)
        assert update == pytest.approx(3.0)

    def test_missing_children_keep_stale_expectation(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.handle_missing_children(1, 0, missing={2}, period_start=2.0)
        # DTS does not advance the expectation for a silent child.
        assert table.next_receive(1, 2) == pytest.approx(2.0)

    def test_timeout_is_latest_child_expectation_plus_constant(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1, timeout_constant=0.2)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0, phase_update=3.3))
        assert shaper.collection_timeout(1, 1, period_start=3.0) == pytest.approx(3.5)

    def test_parent_changed_forces_phase_update(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=2)
        register(shaper, QUERY, node_id=2, tree=make_chain_tree())
        shaper.parent_changed()
        assert shaper.phase_update_for(1, 0, submit_time=2.0) == pytest.approx(3.0)

    def test_forced_retry_does_not_double_count_request_overhead(self) -> None:
        """Regression: one resynchronisation costs exactly one phase request.

        The stub models a CSMA MAC forced into retries: it accepts the
        request frame but takes several link-layer attempts, so the child's
        answer is delayed past further report receptions.  Before the fix,
        every gap detected while the answer was in flight issued (and
        counted the overhead of) a duplicate request.
        """
        sim, table = Simulator(), TimingTable()
        mac = ForcedRetryCsmaStub()
        shaper = DynamicTrafficShaper(sim, table, node_id=1, send_control=mac.send)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())

        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0))
        # Two consecutive gaps while the (retried, still unanswered) request
        # is in flight: seq 0 -> 2 -> 4.
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=2, sequence=2))
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=4, sequence=4))
        assert shaper.stats.sequence_gaps_detected == 2
        assert len(mac.sent) == 1, "one outstanding resync = one request on the air"
        assert shaper.stats.phase_updates_requested == 1
        assert shaper.stats.control_overhead_bytes == mac.sent[0].size_bytes

    def test_answered_request_clears_outstanding_state(self) -> None:
        sim, table = Simulator(), TimingTable()
        mac = ForcedRetryCsmaStub()
        shaper = DynamicTrafficShaper(sim, table, node_id=1, send_control=mac.send)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0))
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=2, sequence=2))
        assert shaper.stats.phase_updates_requested == 1
        # The child's answer (a piggybacked update) arrives; a later loss may
        # legitimately be re-requested and re-counted.
        shaper.report_received(
            1, child=2, packet=report_packet(2, 1, 1, k=3, sequence=3, phase_update=6.0)
        )
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=5, sequence=5))
        assert shaper.stats.phase_updates_requested == 2
        assert len(mac.sent) == 2
        assert shaper.stats.control_overhead_bytes == sum(p.size_bytes for p in mac.sent)

    def test_unanswered_request_expires_after_one_period(self) -> None:
        """A lost request (or answer) must not disable resync forever.

        The outstanding-request entry expires after one query period: the
        next gap detected after that re-requests (and is counted again --
        it is a genuine new control transmission).
        """
        sim, table = Simulator(), TimingTable()
        mac = ForcedRetryCsmaStub()
        shaper = DynamicTrafficShaper(sim, table, node_id=1, send_control=mac.send)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0))
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=2, sequence=2))
        assert len(mac.sent) == 1
        # More than one period passes with no answer: the request (or its
        # answer) was evidently lost on the air.
        sim.run(until=1.5)
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=4, sequence=4))
        assert len(mac.sent) == 2
        assert shaper.stats.phase_updates_requested == 2
        assert shaper.stats.control_overhead_bytes == sum(p.size_bytes for p in mac.sent)

    def test_rejected_request_is_not_counted_as_overhead(self) -> None:
        """A queue-overflow rejection never reaches the air: count nothing."""
        sim, table = Simulator(), TimingTable()
        mac = ForcedRetryCsmaStub(reject_next=1)
        shaper = DynamicTrafficShaper(sim, table, node_id=1, send_control=mac.send)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=0, sequence=0))
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=2, sequence=2))
        assert mac.sent == []
        assert shaper.stats.phase_updates_requested == 0
        assert shaper.stats.control_overhead_bytes == 0
        # The queue drained; the next detected gap retries and is counted once.
        shaper.report_received(1, child=2, packet=report_packet(2, 1, 1, k=4, sequence=4))
        assert len(mac.sent) == 1
        assert shaper.stats.phase_updates_requested == 1
        assert shaper.stats.control_overhead_bytes == mac.sent[0].size_bytes

    def test_overhead_accounting(self) -> None:
        sim, table = Simulator(), TimingTable()
        shaper = DynamicTrafficShaper(sim, table, node_id=1)
        register(shaper, QUERY, node_id=1, tree=make_chain_tree())
        # Ten on-time reports, one late one.
        for k in range(10):
            shaper.send_time(1, k, ready_time=0.0)
            shaper.phase_update_for(1, k, submit_time=shaper.expected_send_time(1))
            shaper.report_sent(1, k, submitted_at=0.0, completed_at=0.0, success=True)
        shaper.send_time(1, 10, ready_time=shaper.expected_send_time(1) + 0.5)
        shaper.phase_update_for(1, 10, submit_time=shaper.expected_send_time(1) + 0.5)
        assert shaper.stats.phase_updates_piggybacked == 1
        assert 0 < shaper.overhead_bits_per_report() < 32
