"""Tests for trace sinks, unsubscribe, and the drop-accounting contract.

Covers the ISSUE-6 trace pillar: the ``emitted == len(records) + dropped``
invariant, listener/sink delivery regardless of buffering, the
``categories`` + ``max_records`` + ``clear`` interplay, run-twice
determinism of the JSONL sinks, rotation/pruning of the rotating sink, and
bounded-memory streaming of a real simulation run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.runner import run_single
from repro.experiments.scenarios import rate_sweep_workload
from repro.query.workload import generate_queries
from repro.sim.trace import (
    JsonlTraceSink,
    RotatingJsonlSink,
    TraceRecord,
    TraceRecorder,
    read_jsonl_trace,
    record_from_json,
    record_to_json,
)


class TestUnsubscribe:
    def test_unsubscribe_removes_listener(self) -> None:
        trace = TraceRecorder()
        seen: list = []
        listener = seen.append
        trace.subscribe(listener)
        trace.emit(0.0, "a")
        trace.unsubscribe(listener)
        trace.emit(1.0, "b")
        assert [record.category for record in seen] == ["a"]

    def test_unsubscribe_unknown_listener_is_idempotent(self) -> None:
        trace = TraceRecorder()
        trace.unsubscribe(lambda record: None)  # never subscribed: no error
        listener = lambda record: None  # noqa: E731
        trace.subscribe(listener)
        trace.unsubscribe(listener)
        trace.unsubscribe(listener)
        assert trace._listeners == []

    def test_unsubscribe_during_notification_completes_old_list(self) -> None:
        # Copy-on-write parity with TimingTable: a listener removing itself
        # (or a peer) mid-notification must not disturb the in-flight pass.
        trace = TraceRecorder()
        calls: list = []

        def second(record: TraceRecord) -> None:
            calls.append("second")

        def first(record: TraceRecord) -> None:
            calls.append("first")
            trace.unsubscribe(second)

        trace.subscribe(first)
        trace.subscribe(second)
        trace.emit(0.0, "x")
        assert calls == ["first", "second"]  # old list completed
        trace.emit(1.0, "y")
        assert calls == ["first", "second", "first"]  # new list thereafter


class TestDropAccounting:
    def test_listeners_and_sinks_see_records_beyond_max_records(self) -> None:
        seen: list = []

        class ListSink:
            def __init__(self) -> None:
                self.records: list = []

            def write(self, record: TraceRecord) -> None:
                self.records.append(record)

            def close(self) -> None:
                pass

        sink = ListSink()
        trace = TraceRecorder(max_records=2, sinks=[sink])
        trace.subscribe(seen.append)
        for i in range(5):
            trace.emit(float(i), "x", node=i)
        assert len(trace.records) == 2
        assert trace.dropped == 3
        assert trace.emitted == 5
        assert trace.emitted == len(trace.records) + trace.dropped
        assert len(seen) == 5  # every accepted record reached the listener
        assert len(sink.records) == 5  # ... and the sink

    def test_categories_allowlist_with_max_records_and_clear(self) -> None:
        trace = TraceRecorder(categories=["keep"], max_records=2)
        for i in range(4):
            trace.emit(float(i), "keep", node=i)
            trace.emit(float(i), "drop", node=i)
        # Filtered-out records are not accepted: they count nowhere.
        assert trace.emitted == 4
        assert len(trace.records) == 2
        assert trace.dropped == 2
        trace.clear()
        assert (trace.emitted, len(trace.records), trace.dropped) == (0, 0, 0)
        # After clear the buffer refills up to max_records again.
        for i in range(3):
            trace.emit(float(i), "keep", node=i)
        assert len(trace.records) == 2
        assert trace.dropped == 1
        assert trace.emitted == 3

    def test_store_records_false_keeps_no_buffer_and_drops_nothing(self) -> None:
        trace = TraceRecorder(store_records=False)
        for i in range(100):
            trace.emit(float(i), "x", node=i)
        assert trace.records == []
        assert trace.dropped == 0
        assert trace.emitted == 100


class TestJsonlSink:
    def test_round_trip(self, tmp_path: Path) -> None:
        path = tmp_path / "trace.jsonl"
        trace = TraceRecorder(sinks=[JsonlTraceSink(path)])
        trace.emit(0.5, "radio.state", node=3, old="off", new="idle")
        trace.emit(1.25, "mac.tx", node=None, packet_id=7)
        trace.close_sinks()
        replayed = list(read_jsonl_trace(path))
        assert replayed == trace.records

    def test_record_json_round_trip_preserves_float_times(self) -> None:
        record = TraceRecord(time=0.30000000000000004, category="x", node=1, data={"v": 1.5})
        assert record_from_json(record_to_json(record)) == record

    def test_run_twice_is_byte_identical(self, tmp_path: Path) -> None:
        def run(path: Path) -> None:
            # Packet ids come from a process-global counter; reset it so both
            # runs label packets identically (as the golden harness does).
            import itertools

            import repro.net.packet as packet_module

            packet_module._packet_ids = itertools.count(1)
            sink = JsonlTraceSink(path)
            trace = TraceRecorder(store_records=False, sinks=[sink])
            scenario = smoke_scale()
            queries = generate_queries(rate_sweep_workload(2.0), seed=3)
            run_single(scenario, "DTS-SS", queries, 3, trace=trace)
            trace.close_sinks()
            assert sink.written > 0

        run(tmp_path / "a.jsonl")
        run(tmp_path / "b.jsonl")
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()


class TestRotatingSink:
    def _record(self, i: int) -> TraceRecord:
        return TraceRecord(time=float(i), category="x", node=i, data={"i": i})

    def test_rotates_at_byte_threshold(self, tmp_path: Path) -> None:
        path = tmp_path / "trace.jsonl"
        line_size = len(record_to_json(self._record(0)).encode()) + 1
        sink = RotatingJsonlSink(path, max_bytes=line_size * 2, max_files=10)
        for i in range(5):
            sink.write(self._record(i))
        sink.close()
        assert sink.rotations == 2
        rotated = sink.rotated_paths()
        assert [p.name for p in rotated] == ["trace.jsonl.1", "trace.jsonl.2"]
        replayed = list(read_jsonl_trace([*rotated, path]))
        assert [record.node for record in replayed] == [0, 1, 2, 3, 4]

    def test_prunes_oldest_beyond_max_files(self, tmp_path: Path) -> None:
        path = tmp_path / "trace.jsonl"
        line_size = len(record_to_json(self._record(0)).encode()) + 1
        sink = RotatingJsonlSink(path, max_bytes=line_size, max_files=2)
        for i in range(6):
            sink.write(self._record(i))
        sink.close()
        names = [p.name for p in sink.rotated_paths()]
        assert len(names) == 2  # retention budget
        assert names == ["trace.jsonl.4", "trace.jsonl.5"]  # oldest pruned

    def test_oversized_record_lands_alone(self, tmp_path: Path) -> None:
        path = tmp_path / "trace.jsonl"
        sink = RotatingJsonlSink(path, max_bytes=8, max_files=5)
        sink.write(TraceRecord(time=0.0, category="big", node=1, data={"blob": "x" * 100}))
        sink.write(TraceRecord(time=1.0, category="big", node=2, data={"blob": "y" * 100}))
        sink.close()
        all_paths = [*sink.rotated_paths(), path]
        replayed = list(read_jsonl_trace(all_paths))
        assert [record.node for record in replayed] == [1, 2]

    def test_rejects_nonsensical_limits(self, tmp_path: Path) -> None:
        with pytest.raises(ValueError):
            RotatingJsonlSink(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            RotatingJsonlSink(tmp_path / "t.jsonl", max_files=-1)


class TestStreamingRun:
    def test_streaming_sink_bounds_trace_memory_on_real_run(self, tmp_path: Path) -> None:
        # The paper-scale mechanism at smoke scale: store_records=False keeps
        # the in-RAM record list empty for the whole run while the sink
        # receives every accepted record as a replayable event log.
        path = tmp_path / "run.jsonl"
        sink = JsonlTraceSink(path)
        trace = TraceRecorder(store_records=False, sinks=[sink])
        scenario = smoke_scale()
        queries = generate_queries(rate_sweep_workload(2.0), seed=1)
        metrics, _ = run_single(scenario, "DTS-SS", queries, 1, trace=trace)
        trace.close_sinks()
        assert trace.records == []  # nothing held in RAM
        assert trace.dropped == 0  # streaming mode never "drops"
        assert trace.emitted > 1000  # the run really was traced
        assert sink.written == trace.emitted
        first = next(iter(read_jsonl_trace(path)))
        assert first.category  # replayable
        assert metrics.counters["engine.events_processed"] > 0

    def test_tracing_does_not_change_results(self) -> None:
        scenario = smoke_scale()
        queries = generate_queries(rate_sweep_workload(2.0), seed=5)
        untraced, _ = run_single(scenario, "DTS-SS", queries, 5)
        traced, _ = run_single(
            scenario,
            "DTS-SS",
            queries,
            5,
            trace=TraceRecorder(store_records=False, sinks=[]),
        )
        assert traced == untraced  # bit-identical metrics (counters excluded from eq)
        assert traced.counters["engine.events_processed"] == pytest.approx(
            untraced.counters["engine.events_processed"]
        )
