"""Tests for the CSMA/CA MAC layer."""

from __future__ import annotations

import pytest

from repro.mac.base import MacConfig
from repro.mac.queue import TransmitQueue
from repro.net.addresses import BROADCAST
from repro.net.loss import ScriptedLoss, UniformLoss
from repro.net.node import Network, build_network
from repro.net.packet import DataReportPacket, Packet
from repro.net.topology import Topology
from repro.radio.energy import IDEAL
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _two_node_network(seed: int = 0, loss_model=None, mac_config=None) -> tuple[Simulator, Network]:
    sim = Simulator(seed=seed)
    topo = Topology.line(2, spacing=50.0, comm_range=100.0)
    network = build_network(
        sim, topo, power_profile=IDEAL, loss_model=loss_model, mac_config=mac_config
    )
    return sim, network


class TestTransmitQueue:
    def test_fifo_order(self) -> None:
        queue = TransmitQueue(capacity=3)
        packets = [Packet(src=0, dst=1) for _ in range(3)]
        for packet in packets:
            assert queue.push(packet)
        assert [queue.pop() for _ in range(3)] == packets

    def test_overflow_drops_and_counts(self) -> None:
        queue = TransmitQueue(capacity=1)
        assert queue.push(Packet(src=0, dst=1))
        assert not queue.push(Packet(src=0, dst=1))
        assert queue.dropped_overflow == 1

    def test_push_front(self) -> None:
        queue = TransmitQueue(capacity=2)
        first, second = Packet(src=0, dst=1), Packet(src=0, dst=1)
        queue.push(first)
        queue.push_front(second)
        assert queue.pop() is second

    def test_peek_and_len(self) -> None:
        queue = TransmitQueue()
        assert queue.peek() is None
        assert queue.pop() is None
        packet = Packet(src=0, dst=1)
        queue.push(packet)
        assert queue.peek() is packet
        assert len(queue) == 1
        queue.clear()
        assert len(queue) == 0

    def test_capacity_validation(self) -> None:
        with pytest.raises(ValueError):
            TransmitQueue(capacity=0)

    def test_high_watermark(self) -> None:
        queue = TransmitQueue()
        queue.push(Packet(src=0, dst=1))
        queue.push(Packet(src=0, dst=1))
        queue.pop()
        assert queue.high_watermark == 2


class TestUnicast:
    def test_unicast_delivery_with_ack(self) -> None:
        sim, network = _two_node_network()
        received = []
        done = []
        network.node(1).mac.set_receive_callback(received.append)
        network.node(0).mac.set_send_done_callback(lambda packet, ok: done.append(ok))
        packet = DataReportPacket(src=0, dst=1, query_id=1)
        sim.schedule_at(0.0, network.node(0).mac.send, packet)
        sim.run(until=1.0)
        assert len(received) == 1
        assert received[0].packet_id == packet.packet_id
        assert done == [True]
        assert network.node(0).mac.stats.acks_received == 1
        assert network.node(1).mac.stats.acks_sent == 1

    def test_send_to_sleeping_node_retries_then_fails(self) -> None:
        sim, network = _two_node_network()
        done = []
        network.node(1).radio.sleep()
        network.node(0).mac.set_send_done_callback(lambda packet, ok: done.append(ok))
        sim.schedule_at(0.0, network.node(0).mac.send, DataReportPacket(src=0, dst=1))
        sim.run(until=2.0)
        assert done == [False]
        assert network.node(0).mac.stats.send_failures == 1
        assert network.node(0).mac.stats.retransmissions >= 1

    def test_sender_holds_frame_while_own_radio_asleep(self) -> None:
        sim, network = _two_node_network()
        received = []
        network.node(1).mac.set_receive_callback(received.append)
        network.node(0).radio.sleep()
        sim.schedule_at(0.0, network.node(0).mac.send, DataReportPacket(src=0, dst=1))
        sim.run(until=0.5)
        assert received == []
        # Waking the sender resumes the pending transmission.
        sim.schedule_at(0.5, network.node(0).radio.wake_up)
        sim.run(until=1.0)
        assert len(received) == 1

    def test_retransmission_recovers_from_single_loss(self) -> None:
        # Drop only the first data frame; the retransmission must get through.
        dropped = []

        def drop_first_data(src: int, dst: int, packet: Packet) -> bool:
            if isinstance(packet, DataReportPacket) and not dropped:
                dropped.append(packet.packet_id)
                return True
            return False

        sim, network = _two_node_network(loss_model=ScriptedLoss(drop_first_data))
        received = []
        done = []
        network.node(1).mac.set_receive_callback(received.append)
        network.node(0).mac.set_send_done_callback(lambda packet, ok: done.append(ok))
        sim.schedule_at(0.0, network.node(0).mac.send, DataReportPacket(src=0, dst=1))
        sim.run(until=2.0)
        assert done == [True]
        assert len(received) == 1
        assert network.node(0).mac.stats.retransmissions >= 1

    def test_queue_overflow_reports_failure(self) -> None:
        config = MacConfig(queue_capacity=1)
        sim, network = _two_node_network(mac_config=config)
        done = []
        network.node(0).mac.set_send_done_callback(lambda packet, ok: done.append(ok))

        def send_three() -> None:
            mac = network.node(0).mac
            mac.send(DataReportPacket(src=0, dst=1))
            mac.send(DataReportPacket(src=0, dst=1))
            mac.send(DataReportPacket(src=0, dst=1))

        sim.schedule_at(0.0, send_three)
        sim.run(until=2.0)
        assert done.count(False) >= 1
        assert network.node(0).mac.stats.queue_drops >= 1

    def test_access_delay_recorded(self) -> None:
        sim, network = _two_node_network()
        sim.schedule_at(0.0, network.node(0).mac.send, DataReportPacket(src=0, dst=1))
        sim.run(until=1.0)
        stats = network.node(0).mac.stats
        assert stats.average_access_delay > 0.0
        assert stats.completed_transfers == 1

    def test_without_acks_send_completes_after_airtime(self) -> None:
        config = MacConfig(use_acks=False)
        sim, network = _two_node_network(mac_config=config)
        received = []
        done = []
        network.node(1).mac.set_receive_callback(received.append)
        network.node(0).mac.set_send_done_callback(lambda packet, ok: done.append(ok))
        sim.schedule_at(0.0, network.node(0).mac.send, DataReportPacket(src=0, dst=1))
        sim.run(until=1.0)
        assert done == [True]
        assert len(received) == 1
        assert network.node(1).mac.stats.acks_sent == 0


class TestBroadcast:
    def test_broadcast_reaches_all_neighbors_without_acks(self) -> None:
        sim = Simulator(seed=0)
        topo = Topology.grid(rows=1, cols=3, spacing=50.0, comm_range=60.0)
        network = build_network(sim, topo, power_profile=IDEAL)
        received = {node_id: [] for node_id in network.node_ids}
        for node_id in network.node_ids:
            network.node(node_id).mac.set_receive_callback(received[node_id].append)
        packet = Packet(src=1, dst=BROADCAST, size_bytes=20)
        sim.schedule_at(0.0, network.node(1).mac.send, packet)
        sim.run(until=1.0)
        assert len(received[0]) == 1
        assert len(received[2]) == 1
        assert received[1] == []
        assert network.node(1).mac.stats.broadcasts_sent == 1
        # No ACKs for broadcast frames.
        assert network.node(0).mac.stats.acks_sent == 0


class TestContention:
    def test_two_senders_to_common_receiver_both_eventually_delivered(self) -> None:
        sim = Simulator(seed=3)
        # 0 and 2 both in range of 1 and of each other (no hidden terminal).
        topo = Topology.from_positions([(0, 0), (50, 0), (100, 0)], comm_range=120.0)
        network = build_network(sim, topo, power_profile=IDEAL)
        received = []
        network.node(1).mac.set_receive_callback(received.append)
        sim.schedule_at(0.0, network.node(0).mac.send, DataReportPacket(src=0, dst=1, query_id=1))
        sim.schedule_at(0.0, network.node(2).mac.send, DataReportPacket(src=2, dst=1, query_id=2))
        sim.run(until=2.0)
        assert len(received) == 2
        assert {p.src for p in received} == {0, 2}

    def test_contention_produces_jitter_across_seeds(self) -> None:
        """One-hop delay varies across seeds when two senders contend."""
        delays = set()
        for seed in range(6):
            sim = Simulator(seed=seed)
            topo = Topology.from_positions([(0, 0), (50, 0), (100, 0)], comm_range=120.0)
            network = build_network(sim, topo, power_profile=IDEAL)
            arrivals = []
            network.node(1).mac.set_receive_callback(
                lambda packet: arrivals.append(sim.now)
            )
            sim.schedule_at(0.0, network.node(0).mac.send, DataReportPacket(src=0, dst=1))
            sim.schedule_at(0.0, network.node(2).mac.send, DataReportPacket(src=2, dst=1))
            sim.run(until=2.0)
            delays.add(tuple(round(a, 7) for a in arrivals))
        assert len(delays) > 1

    def test_many_senders_all_frames_delivered(self) -> None:
        sim = Simulator(seed=1)
        positions = [(float(i * 10), 0.0) for i in range(6)]
        topo = Topology.from_positions(positions, comm_range=100.0)
        network = build_network(sim, topo, power_profile=IDEAL)
        received = []
        network.node(0).mac.set_receive_callback(received.append)
        for sender in range(1, 6):
            sim.schedule_at(0.0, network.node(sender).mac.send, DataReportPacket(src=sender, dst=0))
        sim.run(until=5.0)
        assert len(received) == 5


class TestMacConfig:
    def test_frame_airtime(self) -> None:
        config = MacConfig(bandwidth_bps=1e6, header_bytes=0)
        assert config.frame_airtime(52) == pytest.approx(52 * 8 / 1e6)

    def test_frame_airtime_includes_header(self) -> None:
        config = MacConfig(bandwidth_bps=1e6, header_bytes=8)
        assert config.frame_airtime(52) == pytest.approx(60 * 8 / 1e6)

    def test_pending_counters(self) -> None:
        sim, network = _two_node_network()
        mac = network.node(0).mac
        assert not mac.has_pending
        mac.send(DataReportPacket(src=0, dst=1))
        assert mac.has_pending
        assert mac.pending_count == 1
        sim.run(until=1.0)
        assert not mac.has_pending
