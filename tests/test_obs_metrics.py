"""Tests for the metrics registry, the adapters, and counters-on-RunMetrics.

Covers the ISSUE-6 registry pillar: instrument semantics, snapshot
flattening, the duck-typed stats adapters on a real smoke run, the engine's
new derived counters, and the counters dict's trip through the orchestrator
serialization (schema v4).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import smoke_scale
from repro.experiments.metrics import RunMetrics, average_metrics
from repro.experiments.runner import run_single
from repro.experiments.scenarios import rate_sweep_workload
from repro.obs.adapters import collect_run_counters, stats_as_mapping
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.orchestrator.jobs import SCHEMA_VERSION, metrics_from_dict, metrics_to_dict
from repro.query.workload import generate_queries
from repro.sim.engine import Simulator


class TestInstruments:
    def test_counter_increments_and_rejects_negatives(self) -> None:
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self) -> None:
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_histogram_summary(self) -> None:
        histogram = Histogram("h")
        histogram.observe_many([2.0, 4.0, 9.0])
        assert histogram.count == 3
        assert histogram.sum == 15.0
        assert histogram.mean == 5.0
        assert (histogram.min, histogram.max) == (2.0, 9.0)

    def test_empty_histogram_mean_is_zero(self) -> None:
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_mismatch_raises(self) -> None:
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_count_from_sums_across_calls(self) -> None:
        registry = MetricsRegistry()
        registry.count_from("mac", {"frames_sent": 3, "acks_sent": 1})
        registry.count_from("mac", {"frames_sent": 2})
        snapshot = registry.snapshot()
        assert snapshot["mac.frames_sent"] == 5.0
        assert snapshot["mac.acks_sent"] == 1.0

    def test_snapshot_flattens_and_sorts(self) -> None:
        registry = MetricsRegistry()
        registry.gauge("z").set(1.0)
        registry.counter("a").inc()
        registry.histogram("m").observe_many([1.0, 3.0])
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["m.count"] == 2.0
        assert snapshot["m.sum"] == 4.0
        assert snapshot["m.mean"] == 2.0
        assert snapshot["m.min"] == 1.0
        assert snapshot["m.max"] == 3.0

    def test_empty_histogram_omits_min_max(self) -> None:
        registry = MetricsRegistry()
        registry.histogram("h")
        snapshot = registry.snapshot()
        assert "h.min" not in snapshot and "h.max" not in snapshot
        assert snapshot["h.count"] == 0.0


class TestStatsAdapters:
    def test_as_dict_objects_and_dataclasses(self) -> None:
        from repro.core.shaper import ShaperStats
        from repro.net.channel import ChannelStats

        channel = ChannelStats()
        channel.transmissions = 7
        assert stats_as_mapping(channel)["transmissions"] == 7.0
        shaper = ShaperStats(reports_observed=3)
        assert stats_as_mapping(shaper)["reports_observed"] == 3.0

    def test_unknown_objects_yield_empty(self) -> None:
        assert stats_as_mapping(None) == {}
        assert stats_as_mapping(object()) == {}

    def test_engine_counters_without_models(self) -> None:
        sim = Simulator(seed=1)
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        cancelled = sim.schedule_at(10.0, lambda: None)
        cancelled.cancel()
        sim.run()
        counters = collect_run_counters(sim, wall_seconds=0.5)
        assert counters["engine.events_processed"] == 5.0
        assert counters["engine.events_scheduled"] == 6.0
        assert counters["engine.events_cancelled"] == 1.0
        assert counters["engine.peak_heap_size"] >= 5.0
        assert counters["run.wall_seconds"] == 0.5
        # The queue drains at t=4.0 (the cancelled t=10 event never fires).
        assert counters["engine.sim_time"] == 4.0
        assert counters["run.wall_seconds_per_sim_second"] == pytest.approx(0.125)


class TestEngineAccounting:
    def test_event_identity_scheduled_equals_processed_pending_cancelled(self) -> None:
        sim = Simulator(seed=0)
        sim.schedule_at(1.0, lambda: None)
        live = sim.schedule_at(50.0, lambda: None)  # stays pending
        dead = sim.schedule_at(2.0, lambda: None)
        dead.cancel()
        sim.run(until=10.0)
        assert sim.scheduled_events == 3
        assert sim.processed_events == 1
        assert sim.pending_events == 1
        assert sim.cancelled_events == 1
        assert (
            sim.scheduled_events
            == sim.processed_events + sim.pending_events + sim.cancelled_events
        )
        assert not live.cancelled

    def test_peak_heap_size_tracks_high_water_mark(self) -> None:
        sim = Simulator(seed=0)

        def burst() -> None:
            for i in range(10):
                sim.schedule_in(1.0 + i, lambda: None)

        sim.schedule_at(0.5, burst)
        assert sim.peak_heap_size == 0  # run() has not observed anything yet
        sim.run()
        assert sim.peak_heap_size == 10


class TestCountersOnRunMetrics:
    @pytest.fixture(scope="class")
    def smoke_metrics(self) -> RunMetrics:
        scenario = smoke_scale()
        queries = generate_queries(rate_sweep_workload(2.0), seed=2)
        metrics, _ = run_single(scenario, "DTS-SS", queries, 2)
        return metrics

    def test_real_run_populates_all_layers(self, smoke_metrics: RunMetrics) -> None:
        counters = smoke_metrics.counters
        for prefix in ("engine.", "channel.", "mac.", "shaper.", "safe_sleep.", "query_service."):
            assert any(key.startswith(prefix) for key in counters), prefix
        assert counters["engine.events_processed"] > 0
        assert counters["engine.peak_heap_size"] > 0
        assert counters["run.wall_seconds"] > 0
        assert counters["channel.transmissions"] == smoke_metrics.channel_stats["transmissions"]

    def test_counters_survive_schema_round_trip(self, smoke_metrics: RunMetrics) -> None:
        assert SCHEMA_VERSION >= 4  # counters entered the schema at v4
        restored = metrics_from_dict(json.loads(json.dumps(metrics_to_dict(smoke_metrics))))
        assert restored.counters == smoke_metrics.counters
        assert restored == smoke_metrics

    def test_v3_record_without_counters_still_loads(self, smoke_metrics: RunMetrics) -> None:
        data = metrics_to_dict(smoke_metrics)
        del data["counters"]
        assert metrics_from_dict(data).counters == {}

    def test_equality_ignores_wall_clock_counters(self, smoke_metrics: RunMetrics) -> None:
        import dataclasses

        twin = dataclasses.replace(smoke_metrics)
        twin.counters = dict(smoke_metrics.counters)
        twin.counters["run.wall_seconds"] = 999.0
        assert twin == smoke_metrics  # outcome equality, not measurement cost

    def test_average_metrics_merges_counters_by_mean(self, smoke_metrics: RunMetrics) -> None:
        import dataclasses

        a = dataclasses.replace(smoke_metrics)
        b = dataclasses.replace(smoke_metrics)
        a.counters = {"engine.events_processed": 100.0, "run.wall_seconds": 2.0}
        b.counters = {"engine.events_processed": 300.0, "only_in_b": 4.0}
        merged = average_metrics([a, b])
        assert merged.counters["engine.events_processed"] == 200.0
        assert merged.counters["run.wall_seconds"] == 2.0  # keys average where present
        assert merged.counters["only_in_b"] == 4.0
