"""Tests for unit helpers and packet types."""

from __future__ import annotations

import pytest

from repro.net.addresses import BROADCAST, is_broadcast, validate_node_id
from repro.net.packet import (
    ACK_BYTES,
    CONTROL_BYTES,
    DEFAULT_DATA_REPORT_BYTES,
    AckPacket,
    AdvertisementPacket,
    AtimPacket,
    BeaconPacket,
    CoordinatorAnnouncement,
    DataReportPacket,
    Packet,
    PhaseRequestPacket,
    PhaseUpdatePacket,
    SetupPacket,
)
from repro.sim import units


class TestUnits:
    def test_time_conversions(self) -> None:
        assert units.ms(250) == pytest.approx(0.25)
        assert units.us(20) == pytest.approx(2e-5)
        assert units.seconds(3) == 3.0
        assert units.minutes(2) == 120.0

    def test_bandwidth_conversions(self) -> None:
        assert units.mbps(1) == pytest.approx(1e6)
        assert units.kbps(250) == pytest.approx(250e3)
        assert units.khz(32) == pytest.approx(32e3)

    def test_transmission_time(self) -> None:
        # 52 bytes at 1 Mbps = 416 microseconds.
        assert units.transmission_time(52, units.mbps(1)) == pytest.approx(416e-6)
        with pytest.raises(ValueError):
            units.transmission_time(52, 0)
        with pytest.raises(ValueError):
            units.transmission_time(-1, units.mbps(1))

    def test_rate_period_round_trip(self) -> None:
        assert units.period_from_rate(5.0) == pytest.approx(0.2)
        assert units.rate_from_period(0.2) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            units.period_from_rate(0.0)
        with pytest.raises(ValueError):
            units.rate_from_period(0.0)

    def test_bytes_to_bits(self) -> None:
        assert units.bytes_to_bits(52) == 416


class TestAddresses:
    def test_broadcast(self) -> None:
        assert is_broadcast(BROADCAST)
        assert not is_broadcast(0)

    def test_validate_node_id(self) -> None:
        assert validate_node_id(3) == 3
        with pytest.raises(ValueError):
            validate_node_id(-2)
        with pytest.raises(TypeError):
            validate_node_id("3")  # type: ignore[arg-type]


class TestPackets:
    def test_packet_ids_are_unique(self) -> None:
        first = Packet(src=0, dst=1)
        second = Packet(src=0, dst=1)
        assert first.packet_id != second.packet_id

    def test_default_data_report_size_matches_paper(self) -> None:
        report = DataReportPacket(src=0, dst=1)
        assert report.size_bytes == DEFAULT_DATA_REPORT_BYTES == 52

    def test_control_packet_sizes(self) -> None:
        assert AckPacket(src=0, dst=1).size_bytes == ACK_BYTES
        assert SetupPacket(src=0, dst=1).size_bytes == CONTROL_BYTES
        assert PhaseRequestPacket(src=0, dst=1).size_bytes == CONTROL_BYTES
        assert PhaseUpdatePacket(src=0, dst=1).size_bytes == CONTROL_BYTES
        assert AtimPacket(src=0, dst=1).size_bytes == CONTROL_BYTES

    def test_broadcast_packets_force_broadcast_destination(self) -> None:
        assert BeaconPacket(src=0, dst=5).is_broadcast
        assert AdvertisementPacket(src=0, dst=5).is_broadcast
        assert CoordinatorAnnouncement(src=0, dst=5).is_broadcast

    def test_copy_for_hop_reassigns_addresses_and_id(self) -> None:
        original = DataReportPacket(src=3, dst=2, query_id=7, report_index=4, value=1.5)
        forwarded = original.copy_for_hop(src=2, dst=1)
        assert forwarded.src == 2 and forwarded.dst == 1
        assert forwarded.query_id == 7 and forwarded.report_index == 4
        assert forwarded.packet_id != original.packet_id

    def test_describe(self) -> None:
        report = DataReportPacket(src=3, dst=2, query_id=7, report_index=4, phase_update=1.25)
        description = report.describe()
        assert description["query"] == 7
        assert description["phase_update"] == 1.25
