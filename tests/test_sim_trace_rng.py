"""Tests for the trace recorder and named random streams."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_emit_and_filter_by_category(self) -> None:
        trace = TraceRecorder()
        trace.emit(0.0, "radio.state", node=1, new="off")
        trace.emit(1.0, "mac.tx", node=2, packet_id=7)
        trace.emit(2.0, "radio.state", node=2, new="idle")
        assert len(trace) == 3
        radio_records = trace.filter(category="radio.state")
        assert [r.node for r in radio_records] == [1, 2]

    def test_filter_by_node(self) -> None:
        trace = TraceRecorder()
        trace.emit(0.0, "a", node=1)
        trace.emit(0.5, "b", node=2)
        assert [r.category for r in trace.filter(node=2)] == ["b"]

    def test_disabled_recorder_records_nothing(self) -> None:
        trace = TraceRecorder(enabled=False)
        trace.emit(0.0, "a", node=1)
        assert len(trace) == 0

    def test_category_filtering_at_emission(self) -> None:
        trace = TraceRecorder(categories=["keep"])
        trace.emit(0.0, "keep", node=1)
        trace.emit(0.0, "drop", node=1)
        assert trace.categories() == {"keep"}

    def test_max_records_limits_memory(self) -> None:
        trace = TraceRecorder(max_records=2)
        for i in range(5):
            trace.emit(float(i), "x", node=i)
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_subscription_listener_sees_records(self) -> None:
        trace = TraceRecorder()
        seen = []
        trace.subscribe(lambda record: seen.append(record.category))
        trace.emit(0.0, "hello", node=None)
        assert seen == ["hello"]

    def test_clear(self) -> None:
        trace = TraceRecorder()
        trace.emit(0.0, "x", node=1)
        trace.clear()
        assert len(trace) == 0


class TestRandomStreams:
    def test_derive_seed_is_stable(self) -> None:
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_get_returns_same_stream_object(self) -> None:
        streams = RandomStreams(0)
        assert streams.get("x") is streams.get("x")

    def test_reset_restores_initial_sequence(self) -> None:
        streams = RandomStreams(3)
        first = [streams.get("s").random() for _ in range(5)]
        streams.reset("s")
        second = [streams.get("s").random() for _ in range(5)]
        assert first == second

    def test_fork_produces_reproducible_children(self) -> None:
        parent = RandomStreams(9)
        child_a = parent.fork(2).get("x").random()
        child_b = RandomStreams(9).fork(2).get("x").random()
        assert child_a == child_b

    def test_forks_with_different_subseeds_differ(self) -> None:
        parent = RandomStreams(9)
        assert parent.fork(1).get("x").random() != parent.fork(2).get("x").random()

    def test_names_lists_requested_streams(self) -> None:
        streams = RandomStreams(0)
        streams.get("b")
        streams.get("a")
        assert streams.names() == ["a", "b"]


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=30))
def test_property_derived_seeds_fit_in_64_bits(seed: int, name: str) -> None:
    value = derive_seed(seed, name)
    assert 0 <= value < 2**64
