"""Tests for the scenario registry, failure injection, and family sweeps."""

from __future__ import annotations

import random

import pytest

from repro.experiments.config import ScenarioConfig, smoke_scale
from repro.experiments.runner import (
    build_scenario_topology,
    install_failure_schedule,
    run_single,
)
from repro.net.node import build_network
from repro.net.topology import (
    FailureSchedule,
    Topology,
    TopologySpec,
    build_topology_from_spec,
)
from repro.orchestrator.jobs import RunJob, scenario_from_dict, scenario_to_dict
from repro.query.workload import WorkloadSpec
from repro.radio.energy import IDEAL
from repro.routing.tree import build_routing_tree
from repro.scenarios import (
    ScenarioVariant,
    all_families,
    family_names,
    get_family,
    register_family,
    run_family,
    unregister_family,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder

#: Families the ISSUEs require (plus `size`, which rides along).  The last
#: four are the propagation-layer families (PR 4).
EXPECTED_FAMILIES = {
    "paper",
    "reduced",
    "smoke",
    "clustered",
    "corridor",
    "density",
    "size",
    "radio-profiles",
    "churn",
    "shadowed",
    "capture",
    "bursty",
    "mobile",
}


class TestTopologySpec:
    def test_params_are_normalized_and_hashable(self) -> None:
        a = TopologySpec.make("clustered", clusters=3, cluster_radius=50.0)
        b = TopologySpec(kind="clustered", params=(("cluster_radius", 50), ("clusters", 3.0)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.param("clusters", 0.0) == 3.0
        assert a.param("missing", 7.5) == 7.5

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(ValueError):
            TopologySpec(kind="moebius")

    def test_build_dispatch(self) -> None:
        streams = RandomStreams(3)
        uniform = build_topology_from_spec(
            TopologySpec(), 10, (200.0, 200.0), 100.0, streams=streams
        )
        clustered = build_topology_from_spec(
            TopologySpec.make("clustered", clusters=2), 10, (200.0, 200.0), 100.0, seed=3
        )
        corridor = build_topology_from_spec(
            TopologySpec.make("corridor"), 10, (400.0, 50.0), 100.0, seed=3
        )
        for topology in (uniform, clustered, corridor):
            assert topology.num_nodes == 10


class TestFailureSchedule:
    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            FailureSchedule(fraction=1.0)
        with pytest.raises(ValueError):
            FailureSchedule(window=(5.0, 1.0))
        with pytest.raises(ValueError):
            FailureSchedule(explicit=((-1.0, 2),))

    def test_empty_schedule(self) -> None:
        assert FailureSchedule().is_empty
        assert not FailureSchedule(fraction=0.1).is_empty
        assert not FailureSchedule(explicit=((1.0, 2),)).is_empty

    def test_materialize_is_deterministic(self) -> None:
        schedule = FailureSchedule(fraction=0.25, window=(2.0, 8.0))
        candidates = list(range(1, 13))
        first = schedule.materialize(candidates, random.Random(42))
        second = schedule.materialize(candidates, random.Random(42))
        assert first == second
        assert len(first) == 3  # 25% of 12
        assert all(2.0 <= t <= 8.0 and n in candidates for t, n in first)
        assert first == sorted(first)

    def test_nonzero_fraction_fails_at_least_one_node(self) -> None:
        schedule = FailureSchedule(fraction=0.01, window=(0.0, 1.0))
        events = schedule.materialize([1, 2, 3], random.Random(0))
        assert len(events) == 1

    def test_explicit_events_are_merged_and_sorted(self) -> None:
        schedule = FailureSchedule(explicit=((5.0, 3), (1.0, 2)))
        assert schedule.materialize([], random.Random(0)) == [(1.0, 2), (5.0, 3)]


class TestRegistry:
    def test_required_families_are_registered(self) -> None:
        names = set(family_names())
        assert EXPECTED_FAMILIES <= names
        assert len(names) >= 6

    def test_every_family_builds_valid_smoke_variants(self) -> None:
        base = smoke_scale()
        for family in all_families():
            if family.name == "paper":
                continue  # paper scale is intentionally full size; skip building
            variants = family.variants(base)
            assert variants, family.name
            labels = [variant.label for variant in variants]
            assert len(labels) == len(set(labels)), f"{family.name} has duplicate labels"
            for variant in variants:
                assert isinstance(variant.scenario, ScenarioConfig)
                assert isinstance(variant.workload, WorkloadSpec)

    def test_variants_serialize_into_distinct_job_digests(self) -> None:
        base = smoke_scale()
        digests = set()
        for family in all_families():
            if family.name == "paper":
                continue
            for variant in family.variants(base):
                restored = scenario_from_dict(scenario_to_dict(variant.scenario))
                assert restored == variant.scenario
                job = RunJob(
                    scenario=variant.scenario,
                    protocol="DTS-SS",
                    seed=1,
                    workload=variant.workload,
                )
                digests.add(job.digest)
        # Distinct variants hash to distinct digests (`reduced`'s single
        # variant coincides with `density`/`size` at factor 1.0 by design).
        assert len(digests) >= 20

    def test_get_family_unknown_name(self) -> None:
        with pytest.raises(KeyError, match="known families"):
            get_family("does-not-exist")

    def test_register_and_unregister(self) -> None:
        @register_family("test-tmp", "temporary test family")
        def build(base):
            return [ScenarioVariant("only", 1.0, base, WorkloadSpec(base_rate_hz=1.0))]

        try:
            assert get_family("test-tmp").variants(smoke_scale())[0].label == "only"
            with pytest.raises(ValueError):
                register_family("test-tmp", "duplicate")(build)
        finally:
            assert unregister_family("test-tmp") is not None


class TestFailureInjection:
    def _scenario(self, fraction: float = 0.25) -> ScenarioConfig:
        return smoke_scale().with_overrides(
            failure_schedule=FailureSchedule(
                fraction=fraction, window=(3.0, 6.0)
            )
        )

    def test_install_schedules_network_failures(self) -> None:
        scenario = self._scenario()
        sim = Simulator(seed=5, trace=TraceRecorder(enabled=False))
        topology = build_scenario_topology(scenario, seed=5)
        network = build_network(sim, topology, power_profile=IDEAL)
        tree = build_routing_tree(topology, root=topology.center_node())
        events = install_failure_schedule(
            sim, network, tree, scenario.failure_schedule
        )
        assert events
        assert all(node != tree.root for _, node in events)
        sim.run(until=scenario.duration)
        for _, node in events:
            assert network.node(node).failed

    def test_explicit_root_failure_is_skipped(self) -> None:
        sim = Simulator(seed=5, trace=TraceRecorder(enabled=False))
        topology = Topology.line(num_nodes=3, spacing=50.0)
        network = build_network(sim, topology, power_profile=IDEAL)
        tree = build_routing_tree(topology, root=1)
        schedule = FailureSchedule(explicit=((1.0, 1), (2.0, 0)))
        install_failure_schedule(sim, network, tree, schedule)
        sim.run(until=5.0)
        assert not network.node(1).failed  # the root is never failed
        assert network.node(0).failed

    def test_explicit_root_failure_with_fraction_does_not_crash(self) -> None:
        """Regression: an explicit event naming the root used to make the
        partition check crash (KeyError) when fraction victims followed."""
        sim = Simulator(seed=5, trace=TraceRecorder(enabled=False))
        topology = Topology.line(num_nodes=5, spacing=50.0)
        network = build_network(sim, topology, power_profile=IDEAL)
        tree = build_routing_tree(topology, root=2)
        schedule = FailureSchedule(
            fraction=0.3, window=(2.0, 3.0), explicit=((1.0, 2),)
        )
        events = install_failure_schedule(sim, network, tree, schedule)
        assert all(node != tree.root for _, node in events)
        sim.run(until=5.0)
        assert not network.node(tree.root).failed

    def test_run_single_with_churn_is_deterministic(self) -> None:
        scenario = self._scenario()
        queries = RunJob(
            scenario=scenario, protocol="DTS-SS", seed=2,
            workload=WorkloadSpec(base_rate_hz=2.0),
        ).resolve_queries()
        first, _ = run_single(scenario, "DTS-SS", queries, seed=2)
        second, _ = run_single(scenario, "DTS-SS", queries, seed=2)
        assert first == second

    def test_churn_changes_the_outcome(self) -> None:
        queries = RunJob(
            scenario=smoke_scale(), protocol="SPAN", seed=2,
            workload=WorkloadSpec(base_rate_hz=2.0),
        ).resolve_queries()
        calm, _ = run_single(smoke_scale(), "SPAN", queries, seed=2)
        churned, _ = run_single(self._scenario(0.3), "SPAN", queries, seed=2)
        assert churned != calm


class TestFamilySweeps:
    def test_churn_family_through_orchestrator_and_warm_replay(self, tmp_path) -> None:
        store = tmp_path / "family-store"
        cold = run_family(
            "churn", base=smoke_scale(), protocols=["DTS-SS"], store=store
        )
        assert cold.executed_runs == 4
        assert cold.cached_runs == 0
        warm = run_family(
            "churn", base=smoke_scale(), protocols=["DTS-SS"], store=store
        )
        # The warm-store replay performs ZERO simulator runs...
        assert warm.executed_runs == 0
        assert warm.cached_runs == 4
        # ...and reproduces the cold sweep bit-for-bit.
        for variant in cold.variants:
            assert (
                warm.result(variant.label, "DTS-SS").metrics
                == cold.result(variant.label, "DTS-SS").metrics
            )

    def test_family_table_lists_every_cell(self) -> None:
        result = run_family("smoke", protocols=["DTS-SS"])
        table = result.table()
        assert "smoke-12n DTS-SS" in table
        assert "duty_cycle_%" in table

    def test_run_family_rejects_empty_protocols(self) -> None:
        with pytest.raises(ValueError):
            run_family("smoke", protocols=[])

    def test_run_family_rejects_duplicate_variant_labels(self) -> None:
        """Labels key the result cells; silent dict collapse would return
        the wrong metrics for one of the colliding sweep points."""
        base = smoke_scale()

        @register_family("test-dup", "family with colliding labels")
        def build(scenario):
            workload = WorkloadSpec(base_rate_hz=1.0)
            return [
                ScenarioVariant("same", 1.0, scenario, workload),
                ScenarioVariant("same", 2.0, scenario.with_overrides(seed=9), workload),
            ]

        try:
            with pytest.raises(ValueError, match="duplicate variant labels"):
                run_family("test-dup", base=base)
        finally:
            unregister_family("test-dup")
