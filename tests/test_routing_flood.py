"""Tests for the distributed flood-based tree setup."""

from __future__ import annotations

import pytest

from repro.net.node import build_network
from repro.net.topology import Topology
from repro.radio.energy import IDEAL
from repro.routing.flood import FloodSetup
from repro.routing.tree import RoutingError, build_routing_tree
from repro.sim.engine import Simulator


def run_flood(topology: Topology, root: int, seed: int = 0, duration: float = 5.0):
    sim = Simulator(seed=seed)
    network = build_network(sim, topology, power_profile=IDEAL)
    setup = FloodSetup(sim, network, root=root)
    setup.start(at=0.0)
    sim.run(until=duration)
    return setup


class TestFloodSetup:
    def test_line_flood_builds_chain(self) -> None:
        topo = Topology.line(4, spacing=100.0, comm_range=120.0)
        setup = run_flood(topo, root=0)
        tree = setup.result()
        assert set(tree.nodes) == {0, 1, 2, 3}
        assert tree.parent_of(1) == 0
        assert tree.parent_of(2) == 1
        assert tree.parent_of(3) == 2
        assert setup.coverage() == pytest.approx(1.0)

    def test_flood_covers_connected_random_topology(self) -> None:
        topo = Topology.random(25, area=(300.0, 300.0), comm_range=130.0, seed=3)
        root = topo.center_node()
        setup = run_flood(topo, root=root, duration=10.0)
        tree = setup.result()
        reachable = topo.connected_component_of(root)
        assert set(tree.nodes) == set(reachable)

    def test_flood_levels_match_centralized_builder(self) -> None:
        topo = Topology.random(20, area=(250.0, 250.0), comm_range=120.0, seed=9)
        root = topo.center_node()
        setup = run_flood(topo, root=root, duration=10.0)
        flooded = setup.result()
        centralized = build_routing_tree(topo, root=root)
        for node in centralized.nodes:
            assert flooded.level(node) == centralized.level(node)

    def test_result_before_flood_raises(self) -> None:
        topo = Topology.line(3, spacing=100.0, comm_range=120.0)
        sim = Simulator(seed=0)
        network = build_network(sim, topo, power_profile=IDEAL)
        setup = FloodSetup(sim, network, root=0)
        with pytest.raises(RoutingError):
            setup.result()

    def test_disconnected_node_not_covered(self) -> None:
        topo = Topology.from_positions([(0, 0), (50, 0), (5000, 0)], comm_range=100.0)
        setup = run_flood(topo, root=0)
        tree = setup.result()
        assert 2 not in tree
        assert setup.coverage() == pytest.approx(1.0)
