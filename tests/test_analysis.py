"""Tests for the closed-form analysis of Equations 1-3."""

from __future__ import annotations

from itertools import pairwise

import pytest

from repro.core.analysis import (
    AggregationCost,
    estimate_aggregation_cost,
    nts_duty_cycle,
    nts_receive_time,
    sts_optimal_deadline,
    sts_query_latency,
    sts_receive_time,
)
from repro.mac.base import MacConfig

COST = AggregationCost(t_collect=0.02, t_comp=0.005)


class TestEquation1:
    def test_leaf_has_zero_receive_time(self) -> None:
        assert nts_receive_time(0, COST) == 0.0

    def test_rank_one_only_collects(self) -> None:
        assert nts_receive_time(1, COST) == pytest.approx(COST.t_collect)

    def test_grows_linearly_with_rank(self) -> None:
        values = [nts_receive_time(d, COST) for d in range(1, 6)]
        diffs = [b - a for a, b in pairwise(values)]
        for diff in diffs:
            assert diff == pytest.approx(COST.t_agg)

    def test_negative_rank_rejected(self) -> None:
        with pytest.raises(ValueError):
            nts_receive_time(-1, COST)

    def test_duty_cycle_prediction(self) -> None:
        assert nts_duty_cycle(3, period=1.0, cost=COST) == pytest.approx(
            nts_receive_time(3, COST)
        )
        assert nts_duty_cycle(50, period=0.001, cost=COST) == 1.0
        with pytest.raises(ValueError):
            nts_duty_cycle(1, period=0.0, cost=COST)


class TestEquation2:
    def test_latency_dominated_by_local_deadline_when_large(self) -> None:
        assert sts_query_latency(4, 0.5, COST) == pytest.approx(2.0)

    def test_latency_dominated_by_tagg_when_deadline_small(self) -> None:
        assert sts_query_latency(4, 0.001, COST) == pytest.approx(4 * COST.t_agg)

    def test_knee_at_local_deadline_equal_tagg(self) -> None:
        knee = COST.t_agg
        below = sts_query_latency(4, knee * 0.5, COST)
        at = sts_query_latency(4, knee, COST)
        above = sts_query_latency(4, knee * 2, COST)
        assert below == pytest.approx(at)
        assert above > at

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            sts_query_latency(-1, 0.1, COST)
        with pytest.raises(ValueError):
            sts_query_latency(3, -0.1, COST)


class TestEquation3:
    def test_leaf_has_zero_receive_time(self) -> None:
        assert sts_receive_time(0.1, 0, COST) == 0.0

    def test_small_deadline_behaves_like_nts(self) -> None:
        assert sts_receive_time(0.0, 3, COST) == pytest.approx(nts_receive_time(3, COST))

    def test_large_deadline_reduces_to_collect_time(self) -> None:
        assert sts_receive_time(COST.t_agg * 2, 4, COST) == pytest.approx(COST.t_collect)

    def test_monotonically_non_increasing_in_deadline(self) -> None:
        deadlines = [i * 0.005 for i in range(12)]
        values = [sts_receive_time(l, 4, COST) for l in deadlines]
        for a, b in pairwise(values):
            assert b <= a + 1e-12

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            sts_receive_time(0.1, -2, COST)
        with pytest.raises(ValueError):
            sts_receive_time(-0.1, 2, COST)


class TestEstimation:
    def test_estimate_scales_with_children(self) -> None:
        one = estimate_aggregation_cost(1)
        three = estimate_aggregation_cost(3)
        assert three.t_collect == pytest.approx(3 * one.t_collect)

    def test_estimate_uses_mac_parameters(self) -> None:
        slow = estimate_aggregation_cost(2, MacConfig(bandwidth_bps=250e3))
        fast = estimate_aggregation_cost(2, MacConfig(bandwidth_bps=2e6))
        assert slow.t_collect > fast.t_collect

    def test_estimate_validation(self) -> None:
        with pytest.raises(ValueError):
            estimate_aggregation_cost(-1)

    def test_optimal_deadline(self) -> None:
        assert sts_optimal_deadline(4, COST) == pytest.approx(4 * COST.t_agg)
        with pytest.raises(ValueError):
            sts_optimal_deadline(-1, COST)
